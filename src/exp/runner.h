// runner.h -- sharded execution of an ExperimentSpec grid.
//
// run() walks the spec's deterministic cell list and executes the
// shard's share (cells with index ≡ shard.index mod shard.count), each
// cell one api::run_suite over the cell's derived seed. Every finished
// cell yields a CellResult carrying the cell, its per-instance Metrics,
// and the cell's serialized BENCH_*.json group -- rendered by the very
// JsonSummarySink that writes single-process documents, which is what
// makes reassembled shard output *byte-identical* to a sequential run:
//
//   merged_document(spec, all records)            == sequential bytes
//   merged_document(spec, shard0 ∪ shard1 ∪ ...)  == sequential bytes
//
// Shard workers persist records as JSON lines (one ShardRecord per
// line, stamped with the spec's hash); the same file doubles as the
// resume manifest -- cells already recorded are skipped on re-run.
// merge rejects records whose spec hash does not match and documents
// with missing or conflicting cells.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "api/metrics.h"
#include "api/sink.h"
#include "exp/spec.h"

namespace dash::util {
class ThreadPool;
}

namespace dash::exp {

/// Which slice of the cell list this process executes: cells with
/// index ≡ index (mod count). {0, 1} is the whole grid.
struct ShardOptions {
  std::size_t index = 0;
  std::size_t count = 1;
};

struct CellResult {
  Cell cell;
  std::vector<api::Metrics> runs;  ///< per-instance snapshots, in order
  /// The cell's group object exactly as a single-process
  /// JsonSummarySink document would contain it.
  std::string group_json;
};

struct RunnerOptions {
  ShardOptions shard;
  /// Worker threads of the per-cell suite pool (one pool shared by
  /// every cell of the shard): 0 = hardware concurrency, 1 = run
  /// suites sequentially. Results are identical either way.
  std::size_t threads = 0;
  /// Streamed per finished cell, in the shard's cell order -- persist
  /// shard records here so interrupted sweeps keep completed cells.
  std::function<void(const CellResult&)> on_cell;
  /// When set, every cell's suite runs with record_rows on and the
  /// cell's full per-round row series is streamed here (before
  /// on_cell) in the suite's deterministic buffered order -- rows
  /// sorted by (RoundRow::instance, RoundRow::seq). This is how shard
  /// workers feed per-shard rows files whose merge is byte-identical
  /// to an in-process CsvStreamSink run.
  std::function<void(const Cell&, const std::vector<api::RoundRow>&)>
      on_rows;
  /// Cell indices to skip (already completed, from a resume manifest).
  const std::set<std::size_t>* skip = nullptr;
};

/// Execute the shard's cells in enumeration order; returns their
/// results (skipped cells are absent). Throws std::invalid_argument
/// for malformed shard options and anything spec validation rejects.
std::vector<CellResult> run(const ExperimentSpec& spec,
                            const RunnerOptions& opt = {});

/// Execute exactly one cell of the grid -- the work-stealing quantum
/// the fleet layer (fleet/agent.h) dispatches. `pool` (when non-null)
/// fans the cell's suite instances out; `on_rows`, when set, receives
/// the cell's full deterministic row series before returning. The
/// result (and its rows) is byte-identical to the same cell executed
/// by run() under any sharding -- that is what lets a coordinator merge
/// cells computed by any agent in any order.
CellResult run_cell(
    const ExperimentSpec& spec, const Cell& cell,
    dash::util::ThreadPool* pool = nullptr,
    const std::function<void(const Cell&, const std::vector<api::RoundRow>&)>&
        on_rows = {});

/// Render one cell's BENCH group object from its per-instance metrics
/// (exposed for tests; run() fills CellResult::group_json with it).
std::string render_group(const ExperimentSpec& spec, const Cell& cell,
                         const std::vector<api::Metrics>& runs);

// ---- shard record I/O ------------------------------------------------------

/// One persisted cell result: a line of a shard file.
struct ShardRecord {
  std::size_t cell = 0;
  std::string spec_hash;
  std::string group_json;
};

ShardRecord to_record(const ExperimentSpec& spec, const CellResult& result);

/// One-line JSON serialization (no trailing newline).
std::string shard_line(const ShardRecord& record);

/// Strict inverse of shard_line; returns false on malformed input.
bool parse_shard_line(const std::string& line, ShardRecord* out);

/// Load a shard file's records. A malformed *final* line (interrupted
/// write) is dropped silently -- that is the resume contract; malformed
/// interior lines throw std::invalid_argument.
std::vector<ShardRecord> load_shard_file(const std::string& path);

/// Reassemble the single BENCH_*.json document from shard records.
/// Order of `records` is irrelevant (cells are sorted by index).
/// Throws std::invalid_argument when a record's spec hash differs from
/// spec.hash(), a cell index is out of range, two records disagree
/// about one cell, or cells are missing.
std::string merged_document(const ExperimentSpec& spec,
                            const std::vector<ShardRecord>& records);

// ---- per-shard rows I/O ----------------------------------------------------
//
// With --rows, every worker streams its cells' RoundRows to a CSV-ish
// rows file: one header, then one line per row prefixed with the
// (cell, seq) sort key; the row fields themselves come from
// api::round_row_fields, i.e. exactly the bytes CsvStreamSink would
// write. merged_rows() reassembles any multiset of rows files into one
// canonical document -- sorted by (cell, instance, seq), tolerant of
// identical duplicates (a worker killed after its rows but before its
// record re-emits them on resume) -- so sharded and in-process runs
// produce byte-identical rows output.

/// One persisted RoundRow line plus its parsed sort key.
struct RowsRecord {
  std::size_t cell = 0;
  std::size_t instance = 0;
  std::size_t seq = 0;
  std::string line;  ///< the full line as written (no newline)
};

/// The rows-file header line (no newline): "cell,seq," + the
/// CsvStreamSink column set.
std::string rows_header();

/// One row's line (no newline): cell, seq, then api::round_row_fields.
std::string rows_line(std::size_t cell, const api::RoundRow& row);

/// Parse a rows line's sort-key prefix; false on malformed input.
bool parse_rows_line(const std::string& line, RowsRecord* out);

/// Load a rows file (header + lines). A malformed *final* line
/// (interrupted write) is dropped -- the resume contract; a bad header
/// or malformed interior line throws std::invalid_argument.
std::vector<RowsRecord> load_rows_file(const std::string& path);

/// The canonical rows document: header + every record sorted stably by
/// (cell, instance, seq), identical duplicates collapsed. Two records
/// sharing a key but differing in content throw std::invalid_argument.
std::string merged_rows(std::vector<RowsRecord> records);

}  // namespace dash::exp
