// spec.h -- declarative experiment grids for the exp orchestration
// layer.
//
// An ExperimentSpec is a value describing a *sweep*: the cartesian
// product of graph family x size x healer x scenario, plus replication
// (instances per cell) and seeding. It parses from a one-line text form
// (whitespace-separated key=value tokens, list values '|'-separated):
//
//   n=64|128 healer=dash|sdash scenario=paper-churn instances=5 seed=7
//
// or from a spec file (one `key = value` per line, '#' comments):
//
//   # demo sweep
//   name      = demo
//   family    = ba
//   n         = 64 | 128
//   healer    = dash | sdash
//   scenario  = paper-churn | batch:8x5
//   instances = 5
//   seed      = 7
//
// enumerate() expands the grid into a deterministic, stably ordered
// list of Cells (family outermost, then n, healer, scenario) whose
// indices, labels and derived RNG seeds depend only on the spec text --
// never on sharding or scheduling. That is the property the sharded
// runner (exp/runner.h) builds on: any partition of the cell list,
// executed anywhere, reassembles into the byte-identical document a
// sequential run produces.
//
// Cell seeds are paired across healers and scenarios: every cell at
// the same size draws the same per-instance graph streams (the paper's
// Sec. 4.1 methodology compares strategies on identical instances),
// using the same seed derivation the figure benches always used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dash::exp {

/// One point of the grid: a fully resolved (family, n, healer,
/// scenario) combination with its derived suite seed and stable index
/// in the spec's enumeration order.
struct Cell {
  std::size_t index = 0;  ///< position in the full enumeration
  std::string family;     ///< graph family name ("ba", "tree", ...)
  std::size_t n = 0;      ///< initial graph size
  std::string healer;     ///< healer registry spec ("dash", "capped:2")
  /// Label the cell's JSON group carries for the healer: the strategy's
  /// display name ("DASH") or the raw spec, per the spec's labels mode.
  std::string strategy_label;
  std::string scenario;   ///< canonical scenario spec
  std::uint64_t seed = 0; ///< api::SuiteConfig::base_seed for this cell
  std::size_t instances = 0;
  /// Landmark-estimated stretch (spec key stretch_estimate) instead of
  /// the exact O(n^2) tracker; cells then carry an "estimate" label.
  bool stretch_estimate = false;
  std::size_t stretch_landmarks = 16;
  std::size_t stretch_pairs = 256;

  /// The labels of the cell's BENCH_*.json group, in emission order.
  /// The default family ("ba" as the only family in the grid) is
  /// elided, keeping single-family documents identical to the
  /// pre-grid figure bench output.
  std::vector<std::pair<std::string, std::string>> labels(
      bool include_family) const;
};

struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<std::string> families{"ba"};
  std::vector<std::size_t> sizes;      ///< n values (required, >= 1 each)
  std::vector<std::string> healers{"dash"};
  std::vector<std::string> scenarios;  ///< scenario specs (required)
  std::size_t instances = 10;
  std::uint64_t seed = 0xDA5Bu;
  std::size_t ba_edges = 2;       ///< BA attachment edges
  std::size_t stretch_every = 0;  ///< 0 = no StretchObserver
  /// Landmark estimation instead of the exact stretch tracker -- the
  /// only stretch mode that scales past a few thousand nodes. Samples
  /// report the estimator's upper bound; cells gain an "estimate"
  /// label. Defaults stay off canonical() so pre-existing spec hashes
  /// are unchanged.
  bool stretch_estimate = false;
  std::size_t stretch_landmarks = 16;  ///< estimate mode: 1..64
  std::size_t stretch_pairs = 256;     ///< estimate mode: pairs/sample
  /// Connectivity mode every cell's engines run under:
  /// tracker | bfs | verify.
  std::string connectivity = "tracker";
  /// "display" labels cells with the healer's display name (figure
  /// style); "spec" with the raw registry spec (sweep_cli style).
  std::string labels = "display";

  /// Parse the one-line form. Throws std::invalid_argument for unknown
  /// keys, duplicate keys, empty lists, or malformed values.
  static ExperimentSpec parse_line(const std::string& line);
  /// Parse the file form ('#' comments, blank lines, `key = value`).
  static ExperimentSpec parse(std::istream& in);
  static ExperimentSpec parse_file(const std::string& path);

  /// Semantic validation beyond syntax: healer specs resolve through
  /// core::healer_registry(), scenarios through Scenario::parse,
  /// families through the family table, and every count is positive.
  /// Throws std::invalid_argument with the offending entry named.
  void validate() const;

  /// Canonical one-line form: fixed key order, canonical scenario
  /// specs. parse_line(canonical()) reproduces the spec exactly, and
  /// canonical() is the hashed identity of the experiment.
  std::string canonical() const;

  /// 16-hex-digit FNV-1a digest of canonical(): the identity stamped
  /// into every shard record so merge can reject results computed from
  /// a different spec.
  std::string hash() const;

  /// Expand the grid, validated, in stable order (family, n, healer,
  /// scenario -- outermost first). Cell count is the list's size;
  /// indices are contiguous from 0.
  std::vector<Cell> enumerate() const;

  /// True when cells should carry a "family" label (more than one
  /// family, or a single non-default one).
  bool label_family() const;
};

/// The graph-family factory the grid vocabulary names: the make_graph
/// callable for one (family, n) cell. Known families: ba, tree, gnp,
/// ws, cycle, line; unknown names throw, listing them.
std::function<graph::Graph(util::Rng&)> make_family(
    const std::string& family, std::size_t n, std::size_t ba_edges);

/// Family spellings, for --help texts and errors.
std::vector<std::string> family_names();

}  // namespace dash::exp
