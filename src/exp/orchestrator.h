// orchestrator.h -- multi-process execution of an ExperimentSpec.
//
// orchestrate() spawns N worker processes of the *current binary*
// (fork + exec), each running `run --shard i/N` over the same spec and
// streaming its per-cell records to its own shard file, waits for all
// of them, and merges the shard files into the single BENCH_*.json
// document a sequential run would have produced -- byte-identical, by
// the runner's fragment construction. Every worker's fate (exit code
// or killing signal) is reported: success returns the statuses
// alongside the document, failure throws an OrchestrateError carrying
// all of them so callers can say *which* shard died and how. Already
// completed cells stay in the shard files, so re-running with resume
// recomputes only what is missing.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/spec.h"

namespace dash::exp {

struct OrchestrateOptions {
  /// Path of the binary to spawn (the dash_lab executable itself;
  /// see current_executable()).
  std::string exe;
  /// How the spec reaches the workers on their command line, e.g.
  /// {"--spec", "<file>"} or {"--grid", "<one-line spec>"} -- it must
  /// parse to the same spec orchestrate() was given (hash-checked at
  /// merge time).
  std::vector<std::string> spec_args;
  std::size_t workers = 2;
  /// Directory for the per-shard record files (created if absent).
  std::string shard_dir = "dash_lab_shards";
  /// Reuse records already present in the shard files instead of
  /// recomputing their cells.
  bool resume = false;
  /// Per-worker suite threads (forwarded as --threads). 0 divides the
  /// hardware concurrency evenly between the workers instead of
  /// oversubscribing every core N times.
  std::size_t threads = 0;
  /// Have every worker stream its cells' per-round rows to a per-shard
  /// rows file (rows_path) and merge them into OrchestrateResult::rows
  /// -- byte-identical to an in-process --rows run.
  bool rows = false;
};

/// How one worker process ended.
struct WorkerStatus {
  std::size_t shard = 0;  ///< shard index (of `count`)
  std::size_t count = 0;
  bool exited = false;    ///< normal termination (any exit code)
  int exit_code = 0;
  bool signaled = false;  ///< killed by a signal
  int signal_no = 0;
  bool ok() const { return exited && exit_code == 0; }
  /// "shard 1/4: ok" / "shard 1/4: exit 2" /
  /// "shard 1/4: killed by signal 9 (Killed)".
  std::string describe() const;
};

/// A worker failed (or a wait on it did). Carries every worker's
/// status, not just the first casualty's.
class OrchestrateError : public std::runtime_error {
 public:
  OrchestrateError(const std::string& what,
                   std::vector<WorkerStatus> workers)
      : std::runtime_error(what), workers_(std::move(workers)) {}
  const std::vector<WorkerStatus>& workers() const { return workers_; }

 private:
  std::vector<WorkerStatus> workers_;
};

struct OrchestrateResult {
  std::string document;  ///< the merged BENCH_*.json document
  /// Canonical merged rows document (empty unless options.rows).
  std::string rows;
  std::vector<WorkerStatus> workers;
};

/// Path of shard `index` of `count` inside `dir`.
std::string shard_path(const std::string& dir, std::size_t index,
                       std::size_t count);

/// Path of the rows file of shard `index` of `count` inside `dir`.
std::string rows_path(const std::string& dir, std::size_t index,
                      std::size_t count);

/// Run the spec across worker processes and return the merged
/// document plus per-worker statuses. Throws OrchestrateError when a
/// worker fails and std::invalid_argument for bad options or
/// unmergeable shards.
OrchestrateResult orchestrate(const ExperimentSpec& spec,
                              const OrchestrateOptions& opt);

/// Absolute path of the running binary (/proc/self/exe when
/// available, argv0 otherwise).
std::string current_executable(const char* argv0);

/// fork + exec `exe` with `args` (argv[0] is exe itself); returns the
/// child pid, throws std::runtime_error when fork fails. Shared with
/// the fleet layer, whose serve verb spawns local agent processes the
/// same way orchestrate() spawns shard workers.
pid_t spawn_process(const std::string& exe,
                    const std::vector<std::string>& args);

/// waitpid `pid` and decode its fate (exit code or killing signal)
/// into a WorkerStatus; shard/count are left at zero for the caller.
WorkerStatus wait_process(pid_t pid);

}  // namespace dash::exp
