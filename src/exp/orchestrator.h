// orchestrator.h -- multi-process execution of an ExperimentSpec.
//
// orchestrate() spawns N worker processes of the *current binary*
// (fork + exec), each running `run --shard i/N` over the same spec and
// streaming its per-cell records to its own shard file, waits for all
// of them, and merges the shard files into the single BENCH_*.json
// document a sequential run would have produced -- byte-identical, by
// the runner's fragment construction. Workers that die (non-zero exit,
// signal) fail the orchestration with their shard named; already
// completed cells stay in the shard files, so re-running with resume
// recomputes only what is missing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/spec.h"

namespace dash::exp {

struct OrchestrateOptions {
  /// Path of the binary to spawn (the dash_lab executable itself;
  /// see current_executable()).
  std::string exe;
  /// How the spec reaches the workers on their command line, e.g.
  /// {"--spec", "<file>"} or {"--grid", "<one-line spec>"} -- it must
  /// parse to the same spec orchestrate() was given (hash-checked at
  /// merge time).
  std::vector<std::string> spec_args;
  std::size_t workers = 2;
  /// Directory for the per-shard record files (created if absent).
  std::string shard_dir = "dash_lab_shards";
  /// Reuse records already present in the shard files instead of
  /// recomputing their cells.
  bool resume = false;
  /// Per-worker suite threads (forwarded as --threads). 0 divides the
  /// hardware concurrency evenly between the workers instead of
  /// oversubscribing every core N times.
  std::size_t threads = 0;
};

/// Path of shard `index` of `count` inside `dir`.
std::string shard_path(const std::string& dir, std::size_t index,
                       std::size_t count);

/// Run the spec across worker processes and return the merged
/// document. Throws std::runtime_error when a worker fails and
/// std::invalid_argument for bad options or unmergeable shards.
std::string orchestrate(const ExperimentSpec& spec,
                        const OrchestrateOptions& opt);

/// Absolute path of the running binary (/proc/self/exe when
/// available, argv0 otherwise).
std::string current_executable(const char* argv0);

}  // namespace dash::exp
