#include "exp/chaos.h"

#include <csignal>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace dash::exp {

ChaosPlan parse_chaos(const std::string& spec) {
  ChaosPlan plan;
  if (spec.empty()) return plan;
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "kill") {
    plan.kind = ChaosPlan::Kind::kKill;
  } else if (kind == "torn") {
    plan.kind = ChaosPlan::Kind::kTorn;
  } else {
    throw std::invalid_argument("bad chaos spec '" + spec +
                                "' (expected kill:<cell> or torn:<cell>)");
  }
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    throw std::invalid_argument("chaos spec '" + spec +
                                "' names no cell (kill:<cell>)");
  }
  std::size_t cell = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      throw std::invalid_argument("chaos spec '" + spec +
                                  "': cell must be a decimal index");
    }
    cell = cell * 10 + static_cast<std::size_t>(c - '0');
  }
  plan.cell = cell;
  return plan;
}

ChaosPlan chaos_from_env() {
  const char* env = std::getenv(kChaosEnv);
  if (env == nullptr || env[0] == '\0') return ChaosPlan{};
  return parse_chaos(env);
}

void chaos_strike(const ChaosPlan& plan, std::size_t cell,
                  std::ostream& out, const std::string& record_line) {
  if (!plan.armed() || cell != plan.cell) return;
  if (plan.kind == ChaosPlan::Kind::kTorn) {
    out << record_line.substr(0, record_line.size() / 2);
    out.flush();
  }
  // SIGKILL, not exit(): no flushing, no atexit, no stack unwinding --
  // the same shape as an OOM kill or a pulled machine.
  ::raise(SIGKILL);
}

}  // namespace dash::exp
