#include "exp/runner.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "api/network.h"
#include "api/observers.h"
#include "api/sink.h"
#include "api/suite.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dash::exp {

namespace {

api::ConnectivityMode parse_mode(const std::string& mode) {
  if (mode == "tracker") return api::ConnectivityMode::kTracker;
  if (mode == "bfs") return api::ConnectivityMode::kBfs;
  if (mode == "verify") return api::ConnectivityMode::kVerify;
  throw std::invalid_argument("unknown connectivity mode '" + mode + "'");
}

/// Scan an expected literal; advances *pos past it on success.
bool expect(const std::string& s, std::size_t* pos, const char* lit) {
  const std::size_t len = std::char_traits<char>::length(lit);
  if (s.compare(*pos, len, lit) != 0) return false;
  *pos += len;
  return true;
}

bool scan_digits(const std::string& s, std::size_t* pos,
                 std::size_t* out) {
  const std::size_t start = *pos;
  std::size_t value = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[*pos] - '0');
    ++*pos;
  }
  if (*pos == start) return false;
  *out = value;
  return true;
}

}  // namespace

// ---- execution -------------------------------------------------------------

std::string render_group(const ExperimentSpec& spec, const Cell& cell,
                         const std::vector<api::Metrics>& runs) {
  // Feed the runs through the one serializer that writes BENCH_*.json
  // documents and peel its single group back out: whatever bytes a
  // sequential whole-document run would emit for this cell, this is
  // them.
  std::ostringstream os;
  api::JsonSummarySink sink(os);
  sink.begin_group(cell.labels(spec.label_family()));
  for (std::size_t i = 0; i < runs.size(); ++i) sink.on_run(i, runs[i]);
  sink.flush();
  const std::string doc = os.str();
  static constexpr char kPrefix[] = "{\"groups\":[";
  static constexpr char kSuffix[] = "]}\n";
  const std::size_t prefix = sizeof(kPrefix) - 1;
  const std::size_t suffix = sizeof(kSuffix) - 1;
  DASH_CHECK_MSG(doc.size() > prefix + suffix &&
                     doc.compare(0, prefix, kPrefix) == 0 &&
                     doc.compare(doc.size() - suffix, suffix, kSuffix) == 0,
                 "unexpected JsonSummarySink document shape");
  return doc.substr(prefix, doc.size() - prefix - suffix);
}

CellResult run_cell(
    const ExperimentSpec& spec, const Cell& cell,
    dash::util::ThreadPool* pool,
    const std::function<void(const Cell&, const std::vector<api::RoundRow>&)>&
        on_rows) {
  const api::ConnectivityMode mode = parse_mode(spec.connectivity);
  api::SuiteConfig cfg;
  cfg.make_graph = make_family(cell.family, cell.n, spec.ba_edges);
  cfg.make_healer = api::healer_factory(cell.healer);
  cfg.scenario = api::Scenario::parse(cell.scenario);
  cfg.instances = cell.instances;
  cfg.base_seed = cell.seed;
  api::StretchObserverOptions stretch_opts;
  stretch_opts.sample_every = spec.stretch_every;
  stretch_opts.estimate = cell.stretch_estimate;
  stretch_opts.landmarks = cell.stretch_landmarks;
  stretch_opts.pairs = cell.stretch_pairs;
  const std::size_t stretch_every = spec.stretch_every;
  cfg.configure = [stretch_every, stretch_opts, mode](api::Network& net) {
    if (stretch_every > 0) {
      net.add_observer(
          std::make_unique<api::StretchObserver>(stretch_opts));
    }
    net.set_connectivity_mode(mode);
  };
  // Row capture only changes what is observed, never the run itself
  // (SinkObserver reads the engine's incremental component tracker),
  // so metrics stay byte-identical with or without on_rows.
  api::MemorySink row_sink;
  if (on_rows) {
    cfg.record_rows = true;
    cfg.sinks.push_back(&row_sink);
  }

  CellResult result;
  result.cell = cell;
  result.runs = pool != nullptr ? api::run_suite(cfg, *pool)
                                : api::run_suite(cfg);
  result.group_json = render_group(spec, cell, result.runs);
  if (on_rows) on_rows(cell, row_sink.rows());
  return result;
}

std::vector<CellResult> run(const ExperimentSpec& spec,
                            const RunnerOptions& opt) {
  if (opt.shard.count == 0 || opt.shard.index >= opt.shard.count) {
    throw std::invalid_argument(
        "bad shard options: index " + std::to_string(opt.shard.index) +
        " of " + std::to_string(opt.shard.count));
  }
  const auto cells = spec.enumerate();

  // One pool serves every suite of the shard (run_suite borrows it per
  // call and never stores it).
  std::optional<util::ThreadPool> pool;
  if (opt.threads != 1) pool.emplace(opt.threads);

  std::vector<CellResult> results;
  for (const Cell& cell : cells) {
    if (cell.index % opt.shard.count != opt.shard.index) continue;
    if (opt.skip != nullptr && opt.skip->count(cell.index) != 0) continue;
    results.push_back(
        run_cell(spec, cell, pool ? &*pool : nullptr, opt.on_rows));
    if (opt.on_cell) opt.on_cell(results.back());
  }
  return results;
}

// ---- shard record I/O ------------------------------------------------------

ShardRecord to_record(const ExperimentSpec& spec,
                      const CellResult& result) {
  return ShardRecord{result.cell.index, spec.hash(), result.group_json};
}

std::string shard_line(const ShardRecord& record) {
  // The group is a JSON object, embedded verbatim; the hash is 16 hex
  // chars. Nothing needs escaping, so parse_shard_line can be a strict
  // positional scan.
  std::string out = "{\"cell\":";
  out += std::to_string(record.cell);
  out += ",\"spec_hash\":\"";
  out += record.spec_hash;
  out += "\",\"group\":";
  out += record.group_json;
  out += "}";
  return out;
}

bool parse_shard_line(const std::string& line, ShardRecord* out) {
  std::size_t pos = 0;
  ShardRecord record;
  if (!expect(line, &pos, "{\"cell\":")) return false;
  if (!scan_digits(line, &pos, &record.cell)) return false;
  if (!expect(line, &pos, ",\"spec_hash\":\"")) return false;
  const std::size_t hash_end = line.find('"', pos);
  if (hash_end == std::string::npos || hash_end == pos) return false;
  record.spec_hash = line.substr(pos, hash_end - pos);
  pos = hash_end;
  if (!expect(line, &pos, "\",\"group\":")) return false;
  if (line.empty() || line.back() != '}' || pos >= line.size() - 1) {
    return false;
  }
  record.group_json = line.substr(pos, line.size() - 1 - pos);
  // The group must at least look like a closed object; a truncated
  // line (interrupted write) fails here.
  if (record.group_json.front() != '{' || record.group_json.back() != '}') {
    return false;
  }
  *out = record;
  return true;
}

std::vector<ShardRecord> load_shard_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open shard file '" + path + "'");
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::vector<ShardRecord> records;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ShardRecord record;
    if (parse_shard_line(lines[i], &record)) {
      records.push_back(std::move(record));
    } else if (i + 1 == lines.size()) {
      // Interrupted write: the final line may be truncated; resuming
      // recomputes that cell.
      continue;
    } else {
      throw std::invalid_argument("corrupt shard file '" + path +
                                  "': bad record on line " +
                                  std::to_string(i + 1));
    }
  }
  return records;
}

std::string merged_document(const ExperimentSpec& spec,
                            const std::vector<ShardRecord>& records) {
  const auto cells = spec.enumerate();
  const std::string want = spec.hash();
  std::vector<const ShardRecord*> by_index(cells.size(), nullptr);
  for (const ShardRecord& record : records) {
    if (record.spec_hash != want) {
      throw std::invalid_argument(
          "spec hash mismatch: record for cell " +
          std::to_string(record.cell) + " carries " + record.spec_hash +
          ", this spec is " + want +
          " (the shard was produced by a different spec)");
    }
    if (record.cell >= cells.size()) {
      throw std::invalid_argument(
          "cell index " + std::to_string(record.cell) +
          " out of range (spec enumerates " +
          std::to_string(cells.size()) + " cells)");
    }
    const ShardRecord*& slot = by_index[record.cell];
    if (slot != nullptr && slot->group_json != record.group_json) {
      throw std::invalid_argument(
          "conflicting records for cell " + std::to_string(record.cell));
    }
    slot = &record;
  }
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    if (by_index[i] == nullptr) missing.push_back(i);
  }
  if (!missing.empty()) {
    std::string which;
    for (std::size_t i = 0; i < missing.size() && i < 8; ++i) {
      if (i) which += ", ";
      which += std::to_string(missing[i]);
    }
    if (missing.size() > 8) which += ", ...";
    throw std::invalid_argument(
        "incomplete merge: " + std::to_string(missing.size()) +
        " of " + std::to_string(cells.size()) + " cells missing (" +
        which + ")");
  }

  std::string out = "{\"groups\":[";
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    if (i) out += ',';
    out += by_index[i]->group_json;
  }
  out += "]}\n";
  return out;
}

// ---- per-shard rows I/O ----------------------------------------------------

std::string rows_header() {
  std::string out = "cell,seq";
  for (const std::string& col : api::round_row_header()) {
    out += ',';
    out += col;
  }
  return out;
}

std::string rows_line(std::size_t cell, const api::RoundRow& row) {
  std::string out = std::to_string(cell);
  out += ',';
  out += std::to_string(row.seq);
  for (const std::string& field : api::round_row_fields(row)) {
    out += ',';
    out += field;
  }
  return out;
}

bool parse_rows_line(const std::string& line, RowsRecord* out) {
  std::size_t pos = 0;
  RowsRecord record;
  if (!scan_digits(line, &pos, &record.cell)) return false;
  if (!expect(line, &pos, ",")) return false;
  if (!scan_digits(line, &pos, &record.seq)) return false;
  if (!expect(line, &pos, ",")) return false;
  if (!scan_digits(line, &pos, &record.instance)) return false;
  if (!expect(line, &pos, ",")) return false;
  // The remaining fields are free-form CSV; a line torn inside them is
  // caught by the column count (round + the other 10 columns follow).
  std::size_t commas = 0;
  for (std::size_t i = pos; i < line.size(); ++i) {
    if (line[i] == ',') ++commas;
  }
  if (commas != api::round_row_header().size() - 2 || line.back() == ',') {
    return false;
  }
  record.line = line;
  *out = record;
  return true;
}

std::vector<RowsRecord> load_rows_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open rows file '" + path + "'");
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty()) return {};
  if (lines.front() != rows_header()) {
    throw std::invalid_argument("rows file '" + path +
                                "' has an unexpected header");
  }
  std::vector<RowsRecord> records;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    RowsRecord record;
    if (parse_rows_line(lines[i], &record)) {
      records.push_back(std::move(record));
    } else if (i + 1 == lines.size()) {
      // Interrupted write: the final line may be torn; the cell it
      // belonged to is recomputed on resume.
      continue;
    } else {
      throw std::invalid_argument("corrupt rows file '" + path +
                                  "': bad line " + std::to_string(i + 1));
    }
  }
  return records;
}

std::string merged_rows(std::vector<RowsRecord> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const RowsRecord& a, const RowsRecord& b) {
                     if (a.cell != b.cell) return a.cell < b.cell;
                     if (a.instance != b.instance) {
                       return a.instance < b.instance;
                     }
                     return a.seq < b.seq;
                   });
  std::string out = rows_header();
  out += '\n';
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) {
      const RowsRecord& prev = records[i - 1];
      const RowsRecord& cur = records[i];
      if (prev.cell == cur.cell && prev.instance == cur.instance &&
          prev.seq == cur.seq) {
        if (prev.line != cur.line) {
          throw std::invalid_argument(
              "conflicting rows for cell " + std::to_string(cur.cell) +
              " instance " + std::to_string(cur.instance) + " seq " +
              std::to_string(cur.seq));
        }
        continue;  // identical duplicate (rows replayed after a crash)
      }
    }
    out += records[i].line;
    out += '\n';
  }
  return out;
}

}  // namespace dash::exp
