#include "exp/spec.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "api/scenario.h"
#include "core/factory.h"
#include "graph/generators.h"
#include "util/registry.h"

namespace dash::exp {

namespace {

constexpr std::uint64_t kCellSeedGolden = 0x9E3779B97F4A7C15ULL;

std::string trimmed(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// '|'-separated list with trimmed items; empty items are spec typos.
std::vector<std::string> split_list(const std::string& key,
                                    const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const auto bar = value.find('|', start);
    const std::string item = trimmed(
        bar == std::string::npos ? value.substr(start)
                                 : value.substr(start, bar - start));
    if (item.empty()) {
      throw std::invalid_argument("empty item in experiment key '" + key +
                                  "': '" + value + "'");
    }
    out.push_back(item);
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return out;
}

std::string require_scalar(const std::string& key,
                           const std::string& value) {
  const std::string v = trimmed(value);
  if (v.empty() || v.find('|') != std::string::npos) {
    throw std::invalid_argument("experiment key '" + key +
                                "' takes a single value, got '" + value +
                                "'");
  }
  return v;
}

std::uint64_t parse_u64_value(const std::string& key,
                              const std::string& value) {
  return util::parse_spec_uint(key, require_scalar(key, value));
}

/// Assign one key=value pair onto the spec; `seen` rejects duplicates.
void assign(ExperimentSpec* spec, std::vector<std::string>* seen,
            const std::string& raw_key, const std::string& value) {
  std::string key = trimmed(raw_key);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) {
                   return c == '-' ? '_' : std::tolower(c);
                 });
  if (std::find(seen->begin(), seen->end(), key) != seen->end()) {
    throw std::invalid_argument("duplicate experiment key '" + key + "'");
  }
  seen->push_back(key);

  if (key == "name") {
    spec->name = require_scalar(key, value);
  } else if (key == "family" || key == "families") {
    spec->families = split_list(key, value);
  } else if (key == "n" || key == "sizes") {
    spec->sizes.clear();
    for (const auto& item : split_list(key, value)) {
      const auto n = util::parse_spec_uint(key, item);
      if (n == 0) {
        throw std::invalid_argument("experiment size must be >= 1, got '" +
                                    item + "'");
      }
      spec->sizes.push_back(static_cast<std::size_t>(n));
    }
  } else if (key == "healer" || key == "healers" || key == "strategy") {
    spec->healers = split_list(key, value);
  } else if (key == "scenario" || key == "scenarios") {
    spec->scenarios = split_list(key, value);
  } else if (key == "instances") {
    spec->instances =
        static_cast<std::size_t>(parse_u64_value(key, value));
    if (spec->instances == 0) {
      throw std::invalid_argument("experiment instances must be >= 1");
    }
  } else if (key == "seed") {
    spec->seed = parse_u64_value(key, value);
  } else if (key == "ba_edges") {
    spec->ba_edges = static_cast<std::size_t>(parse_u64_value(key, value));
    if (spec->ba_edges == 0) {
      throw std::invalid_argument("experiment ba_edges must be >= 1");
    }
  } else if (key == "stretch_every") {
    spec->stretch_every =
        static_cast<std::size_t>(parse_u64_value(key, value));
  } else if (key == "stretch_estimate") {
    const std::string v = require_scalar(key, value);
    if (v != "0" && v != "1" && v != "true" && v != "false") {
      throw std::invalid_argument(
          "experiment stretch_estimate must be 0/1/true/false, got '" + v +
          "'");
    }
    spec->stretch_estimate = v == "1" || v == "true";
  } else if (key == "stretch_landmarks") {
    spec->stretch_landmarks =
        static_cast<std::size_t>(parse_u64_value(key, value));
  } else if (key == "stretch_pairs") {
    spec->stretch_pairs =
        static_cast<std::size_t>(parse_u64_value(key, value));
  } else if (key == "connectivity") {
    spec->connectivity = require_scalar(key, value);
  } else if (key == "labels") {
    spec->labels = require_scalar(key, value);
  } else {
    throw std::invalid_argument(
        "unknown experiment key '" + key +
        "' (known: name, family, n, healer, scenario, instances, seed, "
        "ba_edges, stretch_every, stretch_estimate, stretch_landmarks, "
        "stretch_pairs, connectivity, labels)");
  }
}

std::string joined(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += "|";
    out += item;
  }
  return out;
}

/// Item validity for the one-line round trip: list items and scalar
/// values may not contain the separators the text forms use.
void reject_separator_chars(const std::string& what,
                            const std::string& item) {
  if (item.find_first_of(" \t|=") != std::string::npos) {
    throw std::invalid_argument("experiment " + what + " '" + item +
                                "' must not contain spaces, '|' or '='");
  }
}

}  // namespace

// ---- Cell -----------------------------------------------------------------

std::vector<std::pair<std::string, std::string>> Cell::labels(
    bool include_family) const {
  std::vector<std::pair<std::string, std::string>> out;
  if (include_family) out.emplace_back("family", family);
  out.emplace_back("n", std::to_string(n));
  out.emplace_back("strategy", strategy_label);
  out.emplace_back("scenario", scenario);
  if (stretch_estimate) out.emplace_back("estimate", "true");
  return out;
}

// ---- parsing ---------------------------------------------------------------

ExperimentSpec ExperimentSpec::parse_line(const std::string& line) {
  ExperimentSpec spec;
  std::vector<std::string> seen;
  std::istringstream tokens(line);
  std::string token;
  bool any = false;
  while (tokens >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(
          "bad experiment token '" + token +
          "' (expected key=value, lists '|'-separated)");
    }
    assign(&spec, &seen, token.substr(0, eq), token.substr(eq + 1));
    any = true;
  }
  if (!any) {
    throw std::invalid_argument("empty experiment spec line");
  }
  spec.validate();
  return spec;
}

ExperimentSpec ExperimentSpec::parse(std::istream& in) {
  ExperimentSpec spec;
  std::vector<std::string> seen;
  std::string line;
  std::size_t lineno = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line = line.substr(0, hash_pos);
    line = trimmed(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(
          "bad experiment spec line " + std::to_string(lineno) + ": '" +
          line + "' (expected key = value)");
    }
    assign(&spec, &seen, line.substr(0, eq), line.substr(eq + 1));
    any = true;
  }
  if (!any) {
    throw std::invalid_argument("empty experiment spec file");
  }
  spec.validate();
  return spec;
}

ExperimentSpec ExperimentSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open experiment spec file '" +
                                path + "'");
  }
  return parse(in);
}

// ---- validation ------------------------------------------------------------

void ExperimentSpec::validate() const {
  reject_separator_chars("name", name);
  if (sizes.empty()) {
    throw std::invalid_argument("experiment spec needs at least one size "
                                "(key 'n')");
  }
  if (scenarios.empty()) {
    throw std::invalid_argument(
        "experiment spec needs at least one scenario");
  }
  if (healers.empty()) {
    throw std::invalid_argument("experiment spec needs at least one healer");
  }
  if (families.empty()) {
    throw std::invalid_argument("experiment spec needs at least one family");
  }
  if (instances == 0) {
    throw std::invalid_argument("experiment instances must be >= 1");
  }
  for (const auto& family : families) {
    reject_separator_chars("family", family);
    make_family(family, 8, ba_edges);  // throws for unknown families
  }
  for (const auto& healer : healers) {
    reject_separator_chars("healer", healer);
    core::make_strategy(healer);  // throws, listing registered names
  }
  for (const auto& scenario : scenarios) {
    reject_separator_chars("scenario", scenario);
    api::Scenario::parse(scenario);  // throws, listing registered phases
  }
  if (connectivity != "tracker" && connectivity != "bfs" &&
      connectivity != "verify") {
    throw std::invalid_argument("unknown connectivity mode '" +
                                connectivity +
                                "' (tracker, bfs, or verify)");
  }
  if (labels != "display" && labels != "spec") {
    throw std::invalid_argument("unknown labels mode '" + labels +
                                "' (display or spec)");
  }
  if (stretch_landmarks == 0 || stretch_landmarks > 64) {
    throw std::invalid_argument(
        "experiment stretch_landmarks must be in [1, 64]");
  }
  if (stretch_pairs == 0) {
    throw std::invalid_argument("experiment stretch_pairs must be >= 1");
  }
}

// ---- identity --------------------------------------------------------------

std::string ExperimentSpec::canonical() const {
  validate();
  std::vector<std::string> canonical_scenarios;
  for (const auto& s : scenarios) {
    canonical_scenarios.push_back(api::Scenario::parse(s).spec());
  }
  std::vector<std::string> size_items;
  for (std::size_t n : sizes) size_items.push_back(std::to_string(n));

  std::ostringstream os;
  os << "name=" << name << " family=" << joined(families)
     << " n=" << joined(size_items) << " healer=" << joined(healers)
     << " scenario=" << joined(canonical_scenarios)
     << " instances=" << instances << " seed=" << seed
     << " ba_edges=" << ba_edges << " stretch_every=" << stretch_every;
  // Estimator keys appear only when they deviate from the defaults, so
  // every pre-existing spec's canonical text (and hash) is unchanged.
  if (stretch_estimate) os << " stretch_estimate=1";
  if (stretch_landmarks != 16) os << " stretch_landmarks=" << stretch_landmarks;
  if (stretch_pairs != 256) os << " stretch_pairs=" << stretch_pairs;
  os << " connectivity=" << connectivity << " labels=" << labels;
  return os.str();
}

std::string ExperimentSpec::hash() const {
  // FNV-1a over the canonical text: stable across platforms, cheap,
  // and collision-safe at "did you merge the right sweep" scale.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : canonical()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xF];
    h >>= 4;
  }
  return out;
}

// ---- enumeration -----------------------------------------------------------

bool ExperimentSpec::label_family() const {
  return families.size() > 1 || families[0] != "ba";
}

std::vector<Cell> ExperimentSpec::enumerate() const {
  validate();
  std::vector<Cell> cells;
  cells.reserve(families.size() * sizes.size() * healers.size() *
                scenarios.size());
  for (const auto& family : families) {
    for (const std::size_t n : sizes) {
      for (const auto& healer : healers) {
        const std::string display =
            labels == "display" ? core::make_strategy(healer)->name()
                                : healer;
        for (const auto& scenario : scenarios) {
          Cell cell;
          cell.index = cells.size();
          cell.family = family;
          cell.n = n;
          cell.healer = healer;
          cell.strategy_label = display;
          cell.scenario = api::Scenario::parse(scenario).spec();
          // The figure benches' historical derivation: one stream
          // family per size, shared by every healer/scenario/family at
          // that size -- strategies are compared on identical graph
          // instances (paired design).
          cell.seed = seed ^ (static_cast<std::uint64_t>(n) *
                              kCellSeedGolden);
          cell.instances = instances;
          cell.stretch_estimate = stretch_estimate;
          cell.stretch_landmarks = stretch_landmarks;
          cell.stretch_pairs = stretch_pairs;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

// ---- graph families --------------------------------------------------------

std::function<graph::Graph(util::Rng&)> make_family(
    const std::string& family, std::size_t n, std::size_t ba_edges) {
  if (family == "ba") {
    return [n, ba_edges](util::Rng& rng) {
      return graph::barabasi_albert(n, ba_edges, rng);
    };
  }
  if (family == "tree") {
    return [n](util::Rng& rng) { return graph::random_tree(n, rng); };
  }
  if (family == "gnp") {
    return [n](util::Rng& rng) {
      return graph::connected_gnp(
          n, 6.0 / static_cast<double>(n) + 0.02, rng);
    };
  }
  if (family == "ws") {
    return [n](util::Rng& rng) {
      return graph::watts_strogatz(n, 2, 0.2, rng);
    };
  }
  if (family == "cycle") {
    return [n](util::Rng&) { return graph::cycle_graph(n); };
  }
  if (family == "line") {
    return [n](util::Rng&) { return graph::path_graph(n); };
  }
  throw std::invalid_argument("unknown graph family '" + family +
                              "' (known: " + joined(family_names()) + ")");
}

std::vector<std::string> family_names() {
  return {"ba", "tree", "gnp", "ws", "cycle", "line"};
}

}  // namespace dash::exp
