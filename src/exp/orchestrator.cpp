#include "exp/orchestrator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace dash::exp {

pid_t spawn_process(const std::string& exe,
                    const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(exe.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    // Only reached when exec failed; report on the inherited stderr
    // and die without running atexit handlers twice.
    std::string msg = "dash_lab worker: exec of '" + exe +
                      "' failed: " + std::strerror(errno) + "\n";
    [[maybe_unused]] const auto n =
        ::write(STDERR_FILENO, msg.data(), msg.size());
    ::_exit(127);
  }
  return pid;
}

WorkerStatus wait_process(pid_t pid) {
  WorkerStatus ws;
  int st = 0;
  if (::waitpid(pid, &st, 0) < 0) {
    return ws;  // neither exited nor signaled: describe() says so
  }
  if (WIFEXITED(st)) {
    ws.exited = true;
    ws.exit_code = WEXITSTATUS(st);
  } else if (WIFSIGNALED(st)) {
    ws.signaled = true;
    ws.signal_no = WTERMSIG(st);
  }
  return ws;
}

std::string WorkerStatus::describe() const {
  std::string out = "shard " + std::to_string(shard) + "/" +
                    std::to_string(count) + ": ";
  if (exited) {
    out += exit_code == 0 ? "ok" : "exit " + std::to_string(exit_code);
  } else if (signaled) {
    const char* name = ::strsignal(signal_no);
    out += "killed by signal " + std::to_string(signal_no) +
           (name != nullptr ? " (" + std::string(name) + ")" : "");
  } else {
    out += "wait failed";
  }
  return out;
}

std::string shard_path(const std::string& dir, std::size_t index,
                       std::size_t count) {
  return dir + "/shard_" + std::to_string(index) + "_of_" +
         std::to_string(count) + ".jsonl";
}

std::string rows_path(const std::string& dir, std::size_t index,
                      std::size_t count) {
  return dir + "/rows_" + std::to_string(index) + "_of_" +
         std::to_string(count) + ".csv";
}

OrchestrateResult orchestrate(const ExperimentSpec& spec,
                              const OrchestrateOptions& opt) {
  if (opt.workers == 0) {
    throw std::invalid_argument("orchestrate needs >= 1 worker");
  }
  if (opt.exe.empty()) {
    throw std::invalid_argument("orchestrate needs the worker binary path");
  }
  if (opt.spec_args.empty()) {
    throw std::invalid_argument(
        "orchestrate needs spec_args to hand workers the spec");
  }
  std::filesystem::create_directories(opt.shard_dir);

  // Split the machine between the workers: N workers each defaulting
  // to a hardware_concurrency-sized suite pool would oversubscribe the
  // cores N-fold.
  std::size_t worker_threads = opt.threads;
  if (worker_threads == 0) {
    worker_threads = std::max<std::size_t>(
        1, std::thread::hardware_concurrency() / opt.workers);
  }

  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < opt.workers; ++i) {
    std::vector<std::string> args{"run"};
    args.insert(args.end(), opt.spec_args.begin(), opt.spec_args.end());
    args.push_back("--shard");
    args.push_back(std::to_string(i) + "/" + std::to_string(opt.workers));
    args.push_back("--out");
    args.push_back(shard_path(opt.shard_dir, i, opt.workers));
    args.push_back("--threads");
    args.push_back(std::to_string(worker_threads));
    if (opt.rows) {
      args.push_back("--rows");
      args.push_back(rows_path(opt.shard_dir, i, opt.workers));
    }
    if (opt.resume) args.push_back("--resume");
    pids.push_back(spawn_process(opt.exe, args));
  }

  // Wait for every worker before judging any of them, so a failure
  // never leaves orphans behind.
  OrchestrateResult result;
  result.workers.resize(pids.size());
  bool all_ok = true;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    WorkerStatus& ws = result.workers[i];
    ws = wait_process(pids[i]);
    ws.shard = i;
    ws.count = opt.workers;
    all_ok = all_ok && ws.ok();
  }
  if (!all_ok) {
    std::size_t failed = 0;
    std::string first;
    for (const WorkerStatus& ws : result.workers) {
      if (ws.ok()) continue;
      ++failed;
      if (first.empty()) first = ws.describe();
    }
    throw OrchestrateError(
        std::to_string(failed) + " of " + std::to_string(opt.workers) +
            " dash_lab workers failed (first: " + first +
            "); completed cells are kept in " + opt.shard_dir +
            " -- rerun with --resume to finish",
        std::move(result.workers));
  }

  std::vector<ShardRecord> records;
  for (std::size_t i = 0; i < opt.workers; ++i) {
    const auto shard = load_shard_file(shard_path(opt.shard_dir, i,
                                                  opt.workers));
    records.insert(records.end(), shard.begin(), shard.end());
  }
  result.document = merged_document(spec, records);
  if (opt.rows) {
    std::vector<RowsRecord> rows;
    for (std::size_t i = 0; i < opt.workers; ++i) {
      const auto shard_rows =
          load_rows_file(rows_path(opt.shard_dir, i, opt.workers));
      rows.insert(rows.end(), shard_rows.begin(), shard_rows.end());
    }
    result.rows = merged_rows(std::move(rows));
  }
  return result;
}

std::string current_executable(const char* argv0) {
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return self.string();
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace dash::exp
