// chaos.h -- environment-driven crash-fault injection for orchestrated
// sweeps.
//
// The resilience story of the exp layer (per-cell shard records as
// resume manifests, truncated-final-line tolerance, byte-stable
// merges) is only trustworthy if workers actually die mid-sweep in
// tests. A chaos plan, armed through the DASH_CHAOS environment
// variable (which fork/exec'd orchestrate workers inherit), makes a
// worker abort deterministically at a chosen cell:
//
//   DASH_CHAOS=kill:<cell>   SIGKILL before the cell's record is
//                            written (rows for the cell may already
//                            be on disk -- resume recomputes them);
//   DASH_CHAOS=torn:<cell>   flush half the record line, no newline,
//                            then SIGKILL -- the torn-write shape the
//                            shard loader's recovery path must eat.
//
// The strike happens at most once per process (the targeted cell), so
// a --resume rerun with the variable cleared finishes the sweep.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace dash::exp {

/// Environment variable consulted by chaos_from_env().
inline constexpr char kChaosEnv[] = "DASH_CHAOS";

struct ChaosPlan {
  enum class Kind { kNone, kKill, kTorn };
  Kind kind = Kind::kNone;
  std::size_t cell = 0;  ///< the cell index whose record write aborts
  bool armed() const { return kind != Kind::kNone; }
};

/// Parse "kill:<cell>" / "torn:<cell>" (empty -> unarmed plan).
/// Throws std::invalid_argument on anything else.
ChaosPlan parse_chaos(const std::string& spec);

/// The plan from $DASH_CHAOS; unarmed when unset or empty.
ChaosPlan chaos_from_env();

/// Abort the process if `plan` targets `cell`: kKill dies before any
/// byte of `record_line` reaches `out`; kTorn writes the first half of
/// `record_line` (no newline), flushes, then dies. Returns normally
/// when the plan does not apply. `record_line` is the line *without*
/// its trailing newline.
void chaos_strike(const ChaosPlan& plan, std::size_t cell,
                  std::ostream& out, const std::string& record_line);

}  // namespace dash::exp
