#include "core/no_heal.h"

namespace dash::core {

HealAction NoHealStrategy::heal(Graph& /*g*/, HealingState& /*state*/,
                                const DeletionContext& ctx) {
  HealAction action;
  action.reconnection_set_size = ctx.neighbors_g.size();
  return action;
}

}  // namespace dash::core
