#include "core/sdash.h"

#include "core/reconstruction_tree.h"

namespace dash::core {

HealAction SdashStrategy::heal(Graph& g, HealingState& state,
                               const DeletionContext& ctx) {
  HealAction action;
  const std::vector<NodeId> rt = state.reconnection_set(ctx);
  action.reconnection_set_size = rt.size();
  if (rt.empty()) return action;

  // rt is sorted by increasing delta: rt.front() is the cheapest
  // candidate surrogate w, rt.back() is m, the max-delta member.
  // Deltas are signed (net degree change) -- keep the arithmetic signed.
  const std::int64_t max_delta = state.delta(rt.back());
  const std::int64_t w_delta = state.delta(rt.front());
  const bool surrogate_ok =
      rt.size() >= 2 &&
      w_delta + static_cast<std::int64_t>(rt.size() - 1) <=
          max_delta + static_cast<std::int64_t>(slack_);

  const auto edges = surrogate_ok
                         ? star_edges(rt.size(), /*center=*/0)
                         : complete_binary_tree_edges(rt.size());
  action.used_surrogate = surrogate_ok;
  for (auto [a, b] : edges) {
    if (state.add_healing_edge(g, rt[a], rt[b])) {
      action.new_graph_edges.emplace_back(rt[a], rt[b]);
    }
  }
  action.ids_rewritten = state.propagate_min_id(g, rt);
  return action;
}

}  // namespace dash::core
