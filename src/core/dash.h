// dash.h -- Algorithm 1 of the paper: Degree-Based Self-Healing.
//
// On deletion of v, reconnect UN(v,G) u N(v,G') into a complete binary
// tree filled left-to-right, top-down, in increasing order of delta --
// the most-burdened nodes become leaves and gain no degree -- then
// propagate the minimum component id through the merged G'-tree.
//
// Guarantees (Theorem 1): connectivity preserved; delta(v) <= 2 log2 n;
// O(1) reconnection latency; O(log n) amortized id-propagation latency;
// <= 2(d + 2 log n) ln n messages per node whp.
#pragma once

#include "core/strategy.h"

namespace dash::core {

class DashStrategy final : public HealingStrategy {
 public:
  std::string name() const override { return "DASH"; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<DashStrategy>(*this);
  }
};

}  // namespace dash::core
