#include "core/batch.h"

#include <algorithm>
#include <deque>

#include "core/reconstruction_tree.h"
#include "util/check.h"

namespace dash::core {

namespace {

/// Group `batch` into connected clusters of the subgraph G[batch].
std::vector<std::vector<NodeId>> clusters_of(const Graph& g,
                                             const std::vector<NodeId>& batch) {
  std::vector<char> in_batch(g.num_nodes(), 0);
  for (NodeId v : batch) {
    DASH_CHECK_MSG(g.alive(v), "batch member must be alive");
    DASH_CHECK_MSG(!in_batch[v], "duplicate node in batch");
    in_batch[v] = 1;
  }
  std::vector<char> visited(g.num_nodes(), 0);
  std::vector<std::vector<NodeId>> clusters;
  for (NodeId root : batch) {
    if (visited[root]) continue;
    clusters.emplace_back();
    std::deque<NodeId> frontier{root};
    visited[root] = 1;
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      clusters.back().push_back(v);
      for (NodeId u : g.neighbors(v)) {
        if (in_batch[u] && !visited[u]) {
          visited[u] = 1;
          frontier.push_back(u);
        }
      }
    }
    std::sort(clusters.back().begin(), clusters.back().end());
  }
  return clusters;
}

}  // namespace

BatchDeletionContext begin_batch_deletion(HealingState& state,
                                          const Graph& g,
                                          const std::vector<NodeId>& batch) {
  DASH_CHECK(!batch.empty());
  BatchDeletionContext out;
  out.total_deleted = batch.size();

  std::vector<char> in_batch(g.num_nodes(), 0);
  for (NodeId v : batch) in_batch[v] = 1;

  for (const auto& members : clusters_of(g, batch)) {
    ClusterContext cc;
    cc.deleted = members;
    // Surviving neighborhoods of the whole cluster.
    for (NodeId v : members) {
      cc.weight += state.weight(v);
      cc.member_component_ids.push_back(state.component_id(v));
      for (NodeId u : g.neighbors(v)) {
        if (!in_batch[u]) cc.survivor_neighbors.push_back(u);
      }
      for (NodeId u : state.forest_neighbors(v)) {
        if (!in_batch[u]) cc.forest_neighbors.push_back(u);
      }
    }
    std::sort(cc.survivor_neighbors.begin(), cc.survivor_neighbors.end());
    cc.survivor_neighbors.erase(
        std::unique(cc.survivor_neighbors.begin(),
                    cc.survivor_neighbors.end()),
        cc.survivor_neighbors.end());
    std::sort(cc.forest_neighbors.begin(), cc.forest_neighbors.end());
    cc.forest_neighbors.erase(std::unique(cc.forest_neighbors.begin(),
                                          cc.forest_neighbors.end()),
                              cc.forest_neighbors.end());
    out.clusters.push_back(std::move(cc));
  }

  // Delegate the per-cluster bookkeeping (weight transfer, delta
  // charges, G' detachment) to the state.
  state.begin_cluster_deletions(g, out, in_batch);
  return out;
}

void delete_batch(Graph& g, const std::vector<NodeId>& batch) {
  for (NodeId v : batch) g.delete_node(v);
}

std::vector<HealAction> dash_heal_batch(Graph& g, HealingState& state,
                                        const BatchDeletionContext& ctx) {
  std::vector<HealAction> actions;
  actions.reserve(ctx.clusters.size());
  for (const auto& cluster : ctx.clusters) {
    HealAction action;
    // UN(C,G): one representative per component id among surviving
    // neighbors, skipping ids of the cluster's own components (those
    // arrive through the forest neighbors). Representative = lowest
    // initial id, as in the single-node rule.
    std::vector<NodeId> reps;
    for (NodeId u : cluster.survivor_neighbors) {
      const std::uint64_t cid = state.component_id(u);
      if (std::find(cluster.member_component_ids.begin(),
                    cluster.member_component_ids.end(),
                    cid) != cluster.member_component_ids.end()) {
        continue;
      }
      bool placed = false;
      for (NodeId& r : reps) {
        if (state.component_id(r) == cid) {
          if (state.initial_id(u) < state.initial_id(r)) r = u;
          placed = true;
          break;
        }
      }
      if (!placed) reps.push_back(u);
    }
    // Unlike the single-deletion case, component ids cannot
    // disambiguate the candidates here: two surviving G'-neighbors of a
    // *cluster* can end up in the same split subtree (e.g. the G'-path
    // v1 - f1 - f2 - v2 with both v's deleted), and an earlier
    // cluster's min-id propagation may have relabeled survivors whose
    // ids this cluster captured before the batch. Deduplicate the whole
    // candidate set by the *actual* post-deletion G'-component: keep
    // the first candidate per component (id-representatives first, then
    // forest neighbors in node-id order).
    std::vector<NodeId> candidates = std::move(reps);
    candidates.insert(candidates.end(), cluster.forest_neighbors.begin(),
                      cluster.forest_neighbors.end());
    std::vector<NodeId> rt;
    {
      std::vector<char> seen(g.num_nodes(), 0);
      for (NodeId c : candidates) {
        if (seen[c]) continue;
        for (NodeId x : state.healing_component(g, c)) seen[x] = 1;
        rt.push_back(c);
      }
    }
    state.sort_by_delta(rt);

    action.reconnection_set_size = rt.size();
    for (auto [pi, ci] : complete_binary_tree_edges(rt.size())) {
      if (state.add_healing_edge(g, rt[pi], rt[ci])) {
        action.new_graph_edges.emplace_back(rt[pi], rt[ci]);
      }
    }
    if (!rt.empty()) {
      action.ids_rewritten = state.propagate_min_id(g, rt);
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

std::vector<HealAction> dash_delete_and_heal_batch(
    Graph& g, HealingState& state, const std::vector<NodeId>& batch) {
  const BatchDeletionContext ctx = begin_batch_deletion(state, g, batch);
  delete_batch(g, batch);
  return dash_heal_batch(g, state, ctx);
}

}  // namespace dash::core

// ---- HealingState::begin_cluster_deletions ---------------------------
// Defined here (not in healing_state.cpp) because it needs the full
// BatchDeletionContext definition.

namespace dash::core {

void HealingState::begin_cluster_deletions(const Graph& g,
                                           const BatchDeletionContext& ctx,
                                           const std::vector<char>& in_batch) {
  for (const auto& cluster : ctx.clusters) {
    // Lemma 2, cluster-wise: the cluster's weight survives on one
    // surviving neighbor -- a G'-neighbor when one exists.
    const std::vector<NodeId>* heirs = &cluster.forest_neighbors;
    if (heirs->empty()) heirs = &cluster.survivor_neighbors;
    if (!heirs->empty()) {
      NodeId heir = (*heirs)[0];
      for (NodeId u : *heirs) {
        if (initial_id_[u] < initial_id_[heir]) heir = u;
      }
      weight_[heir] += cluster.weight;
    }
    for (NodeId v : cluster.deleted) weight_[v] = 0;

    // Net-delta convention: each survivor loses one degree per edge
    // into the cluster.
    for (NodeId v : cluster.deleted) {
      for (NodeId u : g.neighbors(v)) {
        if (!in_batch[u]) --delta_[u];
      }
    }

    // Detach the cluster from G', counting each incident forest edge
    // exactly once (survivor edges when seen from the deleted side,
    // internal edges from their lower endpoint).
    std::size_t removed_edges = 0;
    for (NodeId v : cluster.deleted) {
      for (NodeId u : forest_adj_[v]) {
        if (!in_batch[u]) {
          auto& adj = forest_adj_[u];
          adj.erase(std::remove(adj.begin(), adj.end(), v), adj.end());
          ++removed_edges;
        } else if (v < u) {
          ++removed_edges;
        }
      }
    }
    for (NodeId v : cluster.deleted) forest_adj_[v].clear();
    healing_edges_ -= removed_edges;
  }
}

}  // namespace dash::core
