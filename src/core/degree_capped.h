// degree_capped.h -- an M-degree-bounded locality-aware healer
// (Section 3.2's definition): no node's degree may grow by more than M
// in a single deletion/heal round.
//
// Used as the subject of the Theorem 2 lower bound: LEVELATTACK on an
// (M+2)-ary tree forces *any* such healer -- including this best-effort
// one -- to hand some node a cumulative degree increase of D - i per
// level, i.e. Omega(log n) overall.
//
// Implementation: reconnect the component-aware set as a path whose
// interior (the +2 slots) is filled with the lowest-delta nodes and
// whose endpoints (the +1 slots) get the two highest-delta nodes. The
// per-round increase is thus <= 2 <= M for every supported M.
#pragma once

#include "core/strategy.h"

namespace dash::core {

class DegreeCappedStrategy final : public HealingStrategy {
 public:
  /// M must be >= 2: with M <= 1 the total degree budget k*M of a
  /// k-node set cannot cover the 2(k-1) endpoint-degrees a spanning
  /// tree needs once k > 2, so connectivity would be unachievable.
  explicit DegreeCappedStrategy(std::uint32_t m = 2);

  std::string name() const override;
  std::uint32_t cap() const { return m_; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<DegreeCappedStrategy>(*this);
  }

  /// Largest single-round delta increase ever imposed on one node;
  /// tests assert this stays <= cap().
  std::uint32_t max_round_increase() const { return max_round_increase_; }

 private:
  std::uint32_t m_;
  std::uint32_t max_round_increase_ = 0;
};

}  // namespace dash::core
