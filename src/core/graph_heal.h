// graph_heal.h -- the paper's most naive baseline (Sec. 4.3 "Graph
// heal"): reconnect *all* neighbors of the deleted node into a binary
// tree with no regard for the cycles this introduces in the healing
// graph. Uses many more edges than necessary, so degrees blow up.
#pragma once

#include "core/strategy.h"

namespace dash::core {

class GraphHealStrategy final : public HealingStrategy {
 public:
  std::string name() const override { return "GraphHeal"; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  bool maintains_forest() const override { return false; }
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<GraphHealStrategy>(*this);
  }
};

}  // namespace dash::core
