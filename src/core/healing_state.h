// healing_state.h -- the shared bookkeeping all healing strategies update.
//
// This models the per-node state of the paper's Section 2:
//   * initial ids ("random number in [0,1]"), realized as a random
//     permutation of 0..n-1 -- only the order of ids matters, and a
//     permutation gives distinct ids with the same order statistics;
//   * component ids maintained by min-id propagation over the healing
//     graph G' (Algorithm 1 line 5), with per-node counts of id changes
//     and messages (Lemmas 8/9, Figures 9(a)/9(b));
//   * delta(v): the paper's degree increase "compared to its initial
//     degree" -- the *net* change: +1 per new healing edge, -1 per
//     incident edge lost to a neighbor's deletion. The net convention is
//     load-bearing: every reconstruction-tree member lost its edge to
//     the deleted node, which is exactly why the paper's case analysis
//     (Lemma 4) charges an RT root only +1 and an internal node at most
//     +2 even though it may touch three new tree edges;
//   * w(v): vertex weights for the rem(v) potential-function analysis
//     (weight 1 at start; a deleted node's weight moves to a G'-neighbor,
//     Lemma 2);
//   * the healing graph G' = (V, E') itself, E' being all edges added by
//     healing (a forest for component-aware strategies, Lemma 1).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dash::core {

using graph::Graph;
using graph::NodeId;

struct BatchDeletionContext;  // batch.h

/// Everything a strategy needs to know about a deletion, captured
/// *before* the node is removed from the graph.
struct DeletionContext {
  NodeId deleted = graph::kInvalidNode;
  std::vector<NodeId> neighbors_g;       ///< N(v, G) at deletion time
  std::vector<NodeId> forest_neighbors;  ///< N(v, G') at deletion time
  std::uint64_t component_id = 0;        ///< v's component id at deletion
  std::uint64_t weight = 0;              ///< w(v) at deletion
};

class HealingState {
 public:
  /// Snapshot initial degrees and assign random ids. `g` must be the
  /// network at time 0.
  HealingState(const Graph& g, dash::util::Rng& rng);

  // ---- per-node accessors -------------------------------------------

  /// The paper's delta(v): net degree change vs the initial degree.
  /// Negative when v lost more neighbors than healing reconnected.
  /// Invariant (tested): delta(v) == degree_now(v) - initial_degree(v)
  /// for every alive v.
  std::int32_t delta(NodeId v) const { return delta_[v]; }
  /// Degree increase recomputed from the graph; equals delta(v) for
  /// alive nodes and exists as an independent cross-check.
  std::int64_t raw_degree_increase(const Graph& g, NodeId v) const;
  std::uint64_t initial_id(NodeId v) const { return initial_id_[v]; }
  std::uint64_t component_id(NodeId v) const { return component_id_[v]; }
  std::uint64_t weight(NodeId v) const { return weight_[v]; }
  std::size_t initial_degree(NodeId v) const { return initial_degree_[v]; }
  std::uint32_t id_changes(NodeId v) const { return id_changes_[v]; }
  std::uint64_t messages_sent(NodeId v) const { return msgs_sent_[v]; }
  std::uint64_t messages_received(NodeId v) const { return msgs_recv_[v]; }
  std::uint64_t messages_total(NodeId v) const {
    return msgs_sent_[v] + msgs_recv_[v];
  }

  /// Size of the node-id space this state covers (dead ids included);
  /// equals Graph::num_nodes() of the matching graph.
  std::size_t num_nodes() const { return initial_degree_.size(); }

  /// Max delta over nodes still alive in `g` (at least 0).
  std::int32_t max_delta_alive(const Graph& g) const;
  /// Max over time and over nodes of delta (the paper's headline
  /// metric: the adversary wins by overloading a node at any point in
  /// time). Never negative (all deltas start at 0).
  std::uint32_t max_delta_ever() const {
    return static_cast<std::uint32_t>(max_delta_ever_);
  }
  std::uint32_t max_id_changes() const;
  std::uint64_t max_messages() const;       ///< max over nodes, sent+received
  std::uint64_t max_messages_sent() const;  ///< max over nodes, sent only

  // ---- the healing graph G' -----------------------------------------

  const std::vector<NodeId>& forest_neighbors(NodeId v) const {
    return forest_adj_[v];
  }
  std::size_t num_healing_edges() const { return healing_edges_; }

  /// True if E' restricted to alive nodes is acyclic.
  bool healing_graph_is_forest(const Graph& g) const;

  /// All alive nodes in v's G'-component (v included). Works for cyclic
  /// E' too (visited-set BFS).
  std::vector<NodeId> healing_component(const Graph& g, NodeId v) const;

  /// The paper's rem(v) potential: W(T_v) minus the heaviest subtree
  /// hanging off v in G'. Only meaningful while E' is a forest.
  std::uint64_t rem(const Graph& g, NodeId v) const;

  // ---- churn: organic node arrivals ----------------------------------

  /// Reconfigurable networks also grow: admit a brand-new node into the
  /// network, wired to `attach_to` (all alive). Performs the
  /// Graph::add_node + edge insertions and extends the healing state:
  /// the newcomer gets a fresh unique id, weight 1, delta 0, and the
  /// join edges shift everyone's *baseline* degree (they are organic
  /// growth, not healing burden -- delta is unchanged for the targets).
  /// Returns the new node's id.
  NodeId join_node(Graph& g, const std::vector<NodeId>& attach_to);

  // ---- deletion/healing protocol ------------------------------------

  /// Capture the context of v's deletion, transfer its weight to a
  /// G'-neighbor (or a G-neighbor if it has none), detach v from G',
  /// and charge every surviving neighbor the -1 degree it is about to
  /// lose. Must be called *before* Graph::delete_node(v).
  DeletionContext begin_deletion(const Graph& g, NodeId v);

  /// UN(v, G) of Section 2.1: one representative (lowest initial id) per
  /// component-id partition of ctx.neighbors_g, excluding nodes that
  /// share v's component id (those are reachable through N(v, G')).
  std::vector<NodeId> unique_neighbors(const DeletionContext& ctx) const;

  /// UN(v,G) + N(v,G'): the node set every component-aware strategy
  /// reconnects. Sorted ascending by (delta, initial id) -- the order
  /// DASH fills its reconstruction tree in.
  std::vector<NodeId> reconnection_set(const DeletionContext& ctx) const;

  /// Add {a,b} to G (if absent) and to E'. Updates delta for genuinely
  /// new graph edges only. Returns true if the graph edge was new.
  bool add_healing_edge(Graph& g, NodeId a, NodeId b);

  /// Algorithm 1 line 5: set every node of the G'-component containing
  /// `seeds` to the minimum component id found among the seeds, counting
  /// id changes and the messages each change broadcasts to G-neighbors.
  /// Returns the number of nodes whose id changed.
  std::size_t propagate_min_id(const Graph& g,
                               const std::vector<NodeId>& seeds);

  /// Batch-deletion counterpart of begin_deletion: per-cluster weight
  /// transfer, survivor delta charges, and G' detachment for a
  /// simultaneous deletion (paper footnote 1). Called by
  /// core::begin_batch_deletion; defined in batch.cpp.
  void begin_cluster_deletions(const Graph& g,
                               const BatchDeletionContext& ctx,
                               const std::vector<char>& in_batch);

  /// Sort `nodes` ascending by (delta, initial id); deterministic.
  void sort_by_delta(std::vector<NodeId>& nodes) const;

  /// Sum of weights over alive nodes (the analysis keeps this == n until
  /// weight is dropped with the final isolated deletions).
  std::uint64_t total_alive_weight(const Graph& g) const;

  // ---- checkpointing -------------------------------------------------

  /// Serialize the full state (text format, versioned). Together with
  /// graph::write_edge_list this checkpoints a running experiment.
  void save(std::ostream& out) const;

  /// Inverse of save(). Throws std::runtime_error on malformed input.
  static HealingState load(std::istream& in);

  /// Deep equality (all per-node fields + counters); for tests.
  bool operator==(const HealingState& other) const;

 private:
  HealingState() = default;  // for load()

  std::vector<std::size_t> initial_degree_;
  std::vector<std::uint64_t> initial_id_;
  std::vector<std::uint64_t> component_id_;
  std::vector<std::int32_t> delta_;
  std::vector<std::uint64_t> weight_;
  std::vector<std::uint32_t> id_changes_;
  std::vector<std::uint64_t> msgs_sent_;
  std::vector<std::uint64_t> msgs_recv_;
  std::vector<std::vector<NodeId>> forest_adj_;
  std::size_t healing_edges_ = 0;
  std::int32_t max_delta_ever_ = 0;
  std::uint64_t next_fresh_id_ = 0;  ///< id source for joined nodes
};

}  // namespace dash::core
