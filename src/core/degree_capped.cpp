#include "core/degree_capped.h"

#include <algorithm>

#include "util/check.h"

namespace dash::core {

DegreeCappedStrategy::DegreeCappedStrategy(std::uint32_t m) : m_(m) {
  DASH_CHECK_MSG(m >= 2, "degree cap must be >= 2 (see header)");
}

std::string DegreeCappedStrategy::name() const {
  return "DegreeCapped(M=" + std::to_string(m_) + ")";
}

HealAction DegreeCappedStrategy::heal(Graph& g, HealingState& state,
                                      const DeletionContext& ctx) {
  HealAction action;
  // Sorted ascending by delta.
  std::vector<NodeId> s = state.reconnection_set(ctx);
  action.reconnection_set_size = s.size();
  if (s.empty()) return action;

  // Path order: highest-delta node at the front endpoint, second-highest
  // at the back endpoint, the rest ascending in the interior.
  std::vector<NodeId> order;
  order.reserve(s.size());
  if (s.size() >= 2) {
    order.push_back(s.back());                       // +1 slot
    for (std::size_t i = 0; i + 2 < s.size(); ++i) { // +2 slots
      order.push_back(s[i]);
    }
    order.push_back(s[s.size() - 2]);                // +1 slot
  } else {
    order = s;
  }

  std::vector<std::int32_t> before(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    before[i] = state.delta(order[i]);
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (state.add_healing_edge(g, order[i - 1], order[i])) {
      action.new_graph_edges.emplace_back(order[i - 1], order[i]);
    }
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::int32_t rise = state.delta(order[i]) - before[i];
    DASH_CHECK_MSG(rise <= static_cast<std::int32_t>(m_),
                   "degree cap violated");
    if (rise > 0) {
      max_round_increase_ =
          std::max(max_round_increase_, static_cast<std::uint32_t>(rise));
    }
  }
  action.ids_rewritten = state.propagate_min_id(g, s);
  return action;
}

}  // namespace dash::core
