#include "core/reconstruction_tree.h"

#include "util/check.h"

namespace dash::core {

std::vector<std::pair<std::size_t, std::size_t>>
complete_binary_tree_edges(std::size_t k) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (k <= 1) return edges;
  edges.reserve(k - 1);
  for (std::size_t i = 1; i < k; ++i) {
    edges.emplace_back((i - 1) / 2, i);
  }
  return edges;
}

std::vector<std::pair<std::size_t, std::size_t>> line_edges(std::size_t k) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (k <= 1) return edges;
  edges.reserve(k - 1);
  for (std::size_t i = 1; i < k; ++i) edges.emplace_back(i - 1, i);
  return edges;
}

std::vector<std::pair<std::size_t, std::size_t>> star_edges(
    std::size_t k, std::size_t center) {
  DASH_CHECK(center < k || k == 0);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (k <= 1) return edges;
  edges.reserve(k - 1);
  for (std::size_t i = 0; i < k; ++i) {
    if (i != center) edges.emplace_back(center, i);
  }
  return edges;
}

std::size_t binary_tree_depth_of(std::size_t i) {
  std::size_t depth = 0;
  while (i > 0) {
    i = (i - 1) / 2;
    ++depth;
  }
  return depth;
}

bool binary_tree_is_leaf(std::size_t i, std::size_t k) {
  DASH_CHECK(i < k);
  return 2 * i + 1 >= k;
}

}  // namespace dash::core
