#include "core/graph_heal.h"

#include <algorithm>

#include "core/reconstruction_tree.h"

namespace dash::core {

HealAction GraphHealStrategy::heal(Graph& g, HealingState& state,
                                   const DeletionContext& ctx) {
  HealAction action;
  // Naive: the full neighbor set, in (deterministic) id order -- no
  // component tracking, no delta-awareness.
  std::vector<NodeId> nodes = ctx.neighbors_g;
  std::sort(nodes.begin(), nodes.end());
  action.reconnection_set_size = nodes.size();
  if (nodes.empty()) return action;

  for (auto [parent, child] : complete_binary_tree_edges(nodes.size())) {
    if (state.add_healing_edge(g, nodes[parent], nodes[child])) {
      action.new_graph_edges.emplace_back(nodes[parent], nodes[child]);
    }
  }
  // Ids are still maintained (Fig. 9 compares id/message costs across
  // all strategies) even though this strategy ignores them for healing.
  action.ids_rewritten = state.propagate_min_id(g, nodes);
  return action;
}

}  // namespace dash::core
