// strategy.h -- the healing-strategy interface.
//
// A strategy is invoked once per deletion, *after* the node has been
// removed from the graph, with the context captured just before removal.
// It may add edges only among ctx.neighbors_g (locality-awareness); the
// invariant checkers in analysis/ verify this for every heal.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/healing_state.h"

namespace dash::core {

/// Record of one heal, for metrics and invariant checking.
struct HealAction {
  /// Edges genuinely added to the network G this round.
  std::vector<std::pair<NodeId, NodeId>> new_graph_edges;
  /// Size of the node set the strategy reconnected (|UN(v,G) u N(v,G')|
  /// for component-aware strategies; |N(v,G)| for naive ones).
  std::size_t reconnection_set_size = 0;
  /// SDASH: true when the surrogate (star) rule fired.
  bool used_surrogate = false;
  /// Nodes whose component id changed during propagation.
  std::size_t ids_rewritten = 0;
};

class HealingStrategy {
 public:
  virtual ~HealingStrategy() = default;

  virtual std::string name() const = 0;

  /// Heal after the deletion described by ctx. `g` no longer contains
  /// the deleted node.
  virtual HealAction heal(Graph& g, HealingState& state,
                          const DeletionContext& ctx) = 0;

  /// Component-aware strategies keep E' a forest (Lemma 1); naive
  /// GraphHeal does not. Invariant checks consult this.
  virtual bool maintains_forest() const { return true; }

  virtual std::unique_ptr<HealingStrategy> clone() const = 0;
};

}  // namespace dash::core
