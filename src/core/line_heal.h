// line_heal.h -- the "simple line algorithm" of the earlier work the
// paper builds on (Boman et al. 2006, refs [5,6]): reconnect the
// deletion's neighbor set as a path. Component-aware (uses
// UN(v,G) u N(v,G')) but delta-oblivious; interior path nodes gain
// degree 2 every time, so burdens concentrate.
#pragma once

#include "core/strategy.h"

namespace dash::core {

class LineHealStrategy final : public HealingStrategy {
 public:
  std::string name() const override { return "LineHeal"; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<LineHealStrategy>(*this);
  }
};

}  // namespace dash::core
