// binary_tree_heal.h -- the paper's intermediate baseline (Sec. 4.3
// "Binary tree heal"): component-aware like DASH (reconnects only
// UN(v,G) u N(v,G'), so E' stays a forest) but ignores past degree
// increase when placing nodes in the tree -- placement is by initial id
// instead of by delta. Isolates the contribution of DASH's delta
// ordering.
#pragma once

#include "core/strategy.h"

namespace dash::core {

class BinaryTreeHealStrategy final : public HealingStrategy {
 public:
  std::string name() const override { return "BinaryTreeHeal"; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<BinaryTreeHealStrategy>(*this);
  }
};

}  // namespace dash::core
