#include "core/binary_tree_heal.h"

#include <algorithm>

#include "core/reconstruction_tree.h"

namespace dash::core {

HealAction BinaryTreeHealStrategy::heal(Graph& g, HealingState& state,
                                        const DeletionContext& ctx) {
  HealAction action;
  std::vector<NodeId> rt = state.reconnection_set(ctx);
  // Undo the delta ordering: place by initial id (delta-oblivious).
  std::sort(rt.begin(), rt.end(), [&state](NodeId a, NodeId b) {
    return state.initial_id(a) < state.initial_id(b);
  });
  action.reconnection_set_size = rt.size();
  if (rt.empty()) return action;

  for (auto [parent, child] : complete_binary_tree_edges(rt.size())) {
    if (state.add_healing_edge(g, rt[parent], rt[child])) {
      action.new_graph_edges.emplace_back(rt[parent], rt[child]);
    }
  }
  action.ids_rewritten = state.propagate_min_id(g, rt);
  return action;
}

}  // namespace dash::core
