#include "core/bounds.h"

#include <cmath>

#include "util/check.h"

namespace dash::core::bounds {

double dash_delta_bound(std::size_t n) {
  DASH_CHECK(n >= 1);
  return 2.0 * std::log2(static_cast<double>(n));
}

double message_bound(std::size_t initial_degree, std::size_t n) {
  DASH_CHECK(n >= 1);
  const double log2n = std::log2(static_cast<double>(n));
  const double lnn = std::log(static_cast<double>(n));
  return 2.0 * (static_cast<double>(initial_degree) + 2.0 * log2n) * lnn;
}

double id_change_bound(std::size_t n) {
  DASH_CHECK(n >= 1);
  return 2.0 * std::log(static_cast<double>(n));
}

double lower_bound_delta(std::size_t n, std::size_t m) {
  DASH_CHECK(n >= 1 && m >= 1);
  return std::floor(std::log(static_cast<double>(n)) /
                    std::log(static_cast<double>(m + 2)));
}

long tree_degree_sum_increase(std::size_t d) {
  return 2 * (static_cast<long>(d) - 1) - static_cast<long>(d);
}

}  // namespace dash::core::bounds
