#include "core/line_heal.h"

#include <algorithm>

#include "core/reconstruction_tree.h"

namespace dash::core {

HealAction LineHealStrategy::heal(Graph& g, HealingState& state,
                                  const DeletionContext& ctx) {
  HealAction action;
  std::vector<NodeId> rt = state.reconnection_set(ctx);
  std::sort(rt.begin(), rt.end(), [&state](NodeId a, NodeId b) {
    return state.initial_id(a) < state.initial_id(b);
  });
  action.reconnection_set_size = rt.size();
  if (rt.empty()) return action;

  for (auto [a, b] : line_edges(rt.size())) {
    if (state.add_healing_edge(g, rt[a], rt[b])) {
      action.new_graph_edges.emplace_back(rt[a], rt[b]);
    }
  }
  action.ids_rewritten = state.propagate_min_id(g, rt);
  return action;
}

}  // namespace dash::core
