// sdash.h -- Algorithm 3 of the paper: Surrogate Degree-Based
// Self-Healing (Section 4.6.2).
//
// If some node w of the reconnection set can absorb a star over the
// whole set without exceeding the set's current maximum delta
// (delta(w) + |S| - 1 <= max_delta(S)), connect everyone to w
// ("surrogation": w stands in for the deleted node, so path lengths do
// not grow). Otherwise fall back to DASH's binary tree. Empirically this
// keeps both degree increase and stretch at O(log n).
#pragma once

#include "core/strategy.h"

namespace dash::core {

class SdashStrategy final : public HealingStrategy {
 public:
  /// `surrogate_slack` loosens Algorithm 3's trigger to
  ///   delta(w) + |S| - 1 <= delta(m) + slack.
  /// 0 is the paper's rule. Positive slack makes surrogation fire more
  /// often, trading bounded extra degree (at most `slack` above the
  /// set's max) for lower stretch -- an extension probing the paper's
  /// open problem of provable path-length control; see the
  /// ablation_surrogate_slack bench for the measured trade-off.
  explicit SdashStrategy(std::uint32_t surrogate_slack = 0)
      : slack_(surrogate_slack) {}

  std::string name() const override {
    return slack_ == 0 ? "SDASH"
                       : "SDASH(slack=" + std::to_string(slack_) + ")";
  }
  std::uint32_t surrogate_slack() const { return slack_; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<SdashStrategy>(*this);
  }

 private:
  std::uint32_t slack_;
};

}  // namespace dash::core
