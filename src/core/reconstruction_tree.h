// reconstruction_tree.h -- shapes used to reconnect a deletion's
// neighbor set: complete binary tree (DASH), star (SDASH surrogate),
// line (prior-work baseline and the degree-capped healer).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dash::core {

/// Parent/child index pairs of a complete binary tree over k slots
/// filled left-to-right, top-down: node i's parent is (i-1)/2.
/// k <= 1 yields no edges.
std::vector<std::pair<std::size_t, std::size_t>>
complete_binary_tree_edges(std::size_t k);

/// Index pairs of a path 0-1-2-...-(k-1).
std::vector<std::pair<std::size_t, std::size_t>> line_edges(std::size_t k);

/// Index pairs of a star centered at `center` over k slots.
std::vector<std::pair<std::size_t, std::size_t>> star_edges(
    std::size_t k, std::size_t center);

/// Depth of slot i in the complete binary tree (root = 0).
std::size_t binary_tree_depth_of(std::size_t i);

/// True if slot i is a leaf of the complete binary tree over k slots.
/// Lemma-relevant property: at least ceil(k/2) slots are leaves, so the
/// highest-delta half of DASH's reconnection set gains no degree.
bool binary_tree_is_leaf(std::size_t i, std::size_t k);

}  // namespace dash::core
