#include "core/factory.h"

#include <limits>

#include "core/binary_tree_heal.h"
#include "core/dash.h"
#include "core/degree_capped.h"
#include "core/graph_heal.h"
#include "core/line_heal.h"
#include "core/no_heal.h"
#include "core/sdash.h"

namespace dash::core {

namespace {

/// Factory for entries that take no spec parameter.
template <typename S>
std::unique_ptr<HealingStrategy> simple(const std::string& param) {
  if (!param.empty()) {
    throw std::invalid_argument("strategy does not take a parameter: '" +
                                param + "'");
  }
  return std::make_unique<S>();
}

void register_builtins(util::Registry<HealingStrategy>& r) {
  r.add("dash", simple<DashStrategy>);
  r.add("sdash",
        [](const std::string& param) -> std::unique_ptr<HealingStrategy> {
          if (param.empty()) return std::make_unique<SdashStrategy>();
          return std::make_unique<SdashStrategy>(static_cast<std::uint32_t>(
              util::parse_spec_uint(
                  "sdash", param,
                  std::numeric_limits<std::uint32_t>::max())));
        },
        {}, "sdash[:<slack>]");
  r.add("graph", simple<GraphHealStrategy>, {"graphheal"});
  r.add("binarytree", simple<BinaryTreeHealStrategy>, {"btree"});
  r.add("line", simple<LineHealStrategy>, {"lineheal"});
  r.add("none", simple<NoHealStrategy>, {"noheal"});
  r.add("capped",
        [](const std::string& param) -> std::unique_ptr<HealingStrategy> {
          return std::make_unique<DegreeCappedStrategy>(
              static_cast<std::uint32_t>(util::parse_spec_uint(
                  "capped", param,
                  std::numeric_limits<std::uint32_t>::max())));
        },
        {}, "capped:<M>");
}

}  // namespace

util::Registry<HealingStrategy>& healer_registry() {
  // Built-ins are registered lazily here rather than via static
  // Registrar objects: this accessor is always linked in, whereas the
  // linker may drop unreferenced registrars from a static library.
  static util::Registry<HealingStrategy>* registry = [] {
    auto* r = new util::Registry<HealingStrategy>("healing strategy");
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<HealingStrategy> make_strategy(const std::string& name) {
  return healer_registry().create(name);
}

std::vector<std::string> paper_strategy_specs() {
  return {"graph", "line", "binarytree", "dash", "sdash"};
}

std::vector<std::unique_ptr<HealingStrategy>> paper_strategies() {
  std::vector<std::unique_ptr<HealingStrategy>> out;
  for (const auto& spec : paper_strategy_specs()) {
    out.push_back(make_strategy(spec));
  }
  return out;
}

std::vector<std::string> strategy_names() {
  return healer_registry().names();
}

}  // namespace dash::core
