#include "core/factory.h"

#include <algorithm>
#include <stdexcept>

#include "core/binary_tree_heal.h"
#include "core/dash.h"
#include "core/degree_capped.h"
#include "core/graph_heal.h"
#include "core/line_heal.h"
#include "core/no_heal.h"
#include "core/sdash.h"

namespace dash::core {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

std::unique_ptr<HealingStrategy> make_strategy(const std::string& name) {
  const std::string key = lower(name);
  if (key == "dash") return std::make_unique<DashStrategy>();
  if (key == "sdash") return std::make_unique<SdashStrategy>();
  if (key.rfind("sdash:", 0) == 0) {
    const auto slack = std::stoul(key.substr(6));
    return std::make_unique<SdashStrategy>(
        static_cast<std::uint32_t>(slack));
  }
  if (key == "graph" || key == "graphheal")
    return std::make_unique<GraphHealStrategy>();
  if (key == "binarytree" || key == "btree")
    return std::make_unique<BinaryTreeHealStrategy>();
  if (key == "line" || key == "lineheal")
    return std::make_unique<LineHealStrategy>();
  if (key == "none" || key == "noheal")
    return std::make_unique<NoHealStrategy>();
  if (key.rfind("capped:", 0) == 0) {
    const auto m = std::stoul(key.substr(7));
    return std::make_unique<DegreeCappedStrategy>(
        static_cast<std::uint32_t>(m));
  }
  throw std::invalid_argument("unknown healing strategy: " + name);
}

std::vector<std::unique_ptr<HealingStrategy>> paper_strategies() {
  std::vector<std::unique_ptr<HealingStrategy>> out;
  out.push_back(std::make_unique<GraphHealStrategy>());
  out.push_back(std::make_unique<LineHealStrategy>());
  out.push_back(std::make_unique<BinaryTreeHealStrategy>());
  out.push_back(std::make_unique<DashStrategy>());
  out.push_back(std::make_unique<SdashStrategy>());
  return out;
}

std::vector<std::string> strategy_names() {
  return {"dash", "sdash", "sdash:<slack>", "graph", "binarytree", "line",
          "none", "capped:<M>"};
}

}  // namespace dash::core
