// batch.h -- simultaneous multi-node deletion (paper footnote 1).
//
// "Our main algorithm, DASH, can easily handle the situation where any
//  number of nodes are removed, so long as the neighbor-of-neighbor
//  graph remains connected."
//
// Model: the adversary deletes a set D of nodes in one time step. The
// deleted subgraph decomposes into connected *clusters* (components of
// the subgraph induced by D). For each cluster C, the surviving
// neighbors of C reconnect exactly as in single-node DASH: one
// representative per G'-component among the surviving G-neighbors of C
// (by component id), plus all surviving G'-neighbors of C, joined into
// a delta-ordered complete binary tree, followed by min-id propagation.
// Survivors of one cluster are mutually reachable through the cluster
// in the NoN graph, which is the locality the footnote's precondition
// buys.
//
// Weight transfer follows Lemma 2 cluster-wise: each cluster's total
// weight moves to one surviving G'-neighbor of the cluster (or a
// surviving G-neighbor if the cluster has no healing edges out).
#pragma once

#include <vector>

#include "core/healing_state.h"
#include "core/strategy.h"

namespace dash::core {

/// Context of one deleted cluster, captured before removal.
struct ClusterContext {
  std::vector<NodeId> deleted;            ///< the cluster's members
  std::vector<NodeId> survivor_neighbors; ///< surviving N(C, G), sorted
  std::vector<NodeId> forest_neighbors;   ///< surviving N(C, G')
  std::vector<std::uint64_t> member_component_ids;  ///< ids of members
  std::uint64_t weight = 0;               ///< total cluster weight
};

struct BatchDeletionContext {
  std::vector<ClusterContext> clusters;
  std::size_t total_deleted = 0;
};

/// Capture contexts for the simultaneous deletion of `batch`, transfer
/// weights, charge survivors' delta for every edge they lose into the
/// batch, and detach the batch from G'. Must be called *before* the
/// nodes are removed from the graph. `batch` must be non-empty, all
/// alive, duplicate-free.
BatchDeletionContext begin_batch_deletion(HealingState& state,
                                          const Graph& g,
                                          const std::vector<NodeId>& batch);

/// Remove every batch member from the graph (call after
/// begin_batch_deletion).
void delete_batch(Graph& g, const std::vector<NodeId>& batch);

/// DASH healing over a batch context: one reconstruction tree per
/// cluster + min-id propagation. Returns one HealAction per cluster.
std::vector<HealAction> dash_heal_batch(Graph& g, HealingState& state,
                                        const BatchDeletionContext& ctx);

/// Convenience driver: begin + delete + heal in one call.
std::vector<HealAction> dash_delete_and_heal_batch(
    Graph& g, HealingState& state, const std::vector<NodeId>& batch);

}  // namespace dash::core
