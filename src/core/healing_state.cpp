#include "core/healing_state.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace dash::core {

HealingState::HealingState(const Graph& g, dash::util::Rng& rng) {
  const std::size_t n = g.num_nodes();
  initial_degree_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    DASH_CHECK_MSG(g.alive(v), "HealingState requires the time-0 graph");
    initial_degree_[v] = g.degree(v);
  }
  // Random permutation of 0..n-1 realizes the paper's "uniform random id
  // in [0,1]": distinct values with uniformly random relative order.
  initial_id_.resize(n);
  std::iota(initial_id_.begin(), initial_id_.end(), 0ULL);
  rng.shuffle(initial_id_);

  component_id_ = initial_id_;
  delta_.assign(n, 0);
  weight_.assign(n, 1);
  id_changes_.assign(n, 0);
  msgs_sent_.assign(n, 0);
  msgs_recv_.assign(n, 0);
  forest_adj_.assign(n, {});
  next_fresh_id_ = n;
}

NodeId HealingState::join_node(Graph& g,
                               const std::vector<NodeId>& attach_to) {
  DASH_CHECK_MSG(g.num_nodes() == initial_degree_.size(),
                 "state out of sync with graph");
  const NodeId v = g.add_node();
  for (NodeId u : attach_to) {
    const bool fresh = g.add_edge(v, u);
    DASH_CHECK_MSG(fresh, "duplicate attach target");
    // Organic growth shifts the target's baseline, not its delta.
    ++initial_degree_[u];
  }
  initial_degree_.push_back(attach_to.size());
  initial_id_.push_back(next_fresh_id_);
  component_id_.push_back(next_fresh_id_);
  ++next_fresh_id_;
  delta_.push_back(0);
  weight_.push_back(1);
  id_changes_.push_back(0);
  msgs_sent_.push_back(0);
  msgs_recv_.push_back(0);
  forest_adj_.emplace_back();
  return v;
}

std::int64_t HealingState::raw_degree_increase(const Graph& g,
                                               NodeId v) const {
  return static_cast<std::int64_t>(g.degree(v)) -
         static_cast<std::int64_t>(initial_degree_[v]);
}

std::int32_t HealingState::max_delta_alive(const Graph& g) const {
  std::int32_t best = 0;
  for (NodeId v = 0; v < delta_.size(); ++v) {
    if (g.alive(v)) best = std::max(best, delta_[v]);
  }
  return best;
}

std::uint32_t HealingState::max_id_changes() const {
  std::uint32_t best = 0;
  for (auto c : id_changes_) best = std::max(best, c);
  return best;
}

std::uint64_t HealingState::max_messages() const {
  std::uint64_t best = 0;
  for (NodeId v = 0; v < msgs_sent_.size(); ++v) {
    best = std::max(best, msgs_sent_[v] + msgs_recv_[v]);
  }
  return best;
}

std::uint64_t HealingState::max_messages_sent() const {
  std::uint64_t best = 0;
  for (auto s : msgs_sent_) best = std::max(best, s);
  return best;
}

bool HealingState::healing_graph_is_forest(const Graph& g) const {
  // BFS with parent tracking; a visited neighbor that is not the BFS
  // parent closes a cycle. E' edges to dead nodes were detached at
  // deletion time, so adjacency only references alive nodes.
  std::vector<char> visited(forest_adj_.size(), 0);
  std::deque<std::pair<NodeId, NodeId>> frontier;  // (node, parent)
  for (NodeId root = 0; root < forest_adj_.size(); ++root) {
    if (!g.alive(root) || visited[root]) continue;
    visited[root] = 1;
    frontier.emplace_back(root, graph::kInvalidNode);
    while (!frontier.empty()) {
      auto [v, parent] = frontier.front();
      frontier.pop_front();
      bool skipped_parent_edge = false;
      for (NodeId u : forest_adj_[v]) {
        if (u == parent && !skipped_parent_edge) {
          // Skip exactly one edge back to the parent (E' is simple, so
          // one occurrence).
          skipped_parent_edge = true;
          continue;
        }
        if (visited[u]) return false;
        visited[u] = 1;
        frontier.emplace_back(u, v);
      }
    }
  }
  return true;
}

std::vector<NodeId> HealingState::healing_component(const Graph& g,
                                                    NodeId v) const {
  DASH_CHECK(g.alive(v));
  std::vector<NodeId> comp;
  std::vector<char> visited(forest_adj_.size(), 0);
  std::deque<NodeId> frontier{v};
  visited[v] = 1;
  while (!frontier.empty()) {
    const NodeId x = frontier.front();
    frontier.pop_front();
    comp.push_back(x);
    for (NodeId u : forest_adj_[x]) {
      if (!visited[u]) {
        visited[u] = 1;
        frontier.push_back(u);
      }
    }
  }
  return comp;
}

std::uint64_t HealingState::rem(const Graph& g, NodeId v) const {
  DASH_CHECK(g.alive(v));
  // rem(v) = sum_u W(T(u,v)) - max_u W(T(u,v)) + w(v), over G'-neighbors
  // u of v, where T(u,v) is u's subtree when v is removed from its tree.
  std::uint64_t sum = 0;
  std::uint64_t largest = 0;
  std::vector<char> visited(forest_adj_.size(), 0);
  visited[v] = 1;
  for (NodeId u : forest_adj_[v]) {
    // Weight of u's side when the edge {v,u} is cut.
    std::uint64_t w_subtree = 0;
    std::deque<NodeId> frontier{u};
    DASH_CHECK_MSG(!visited[u], "rem() requires E' to be a forest");
    visited[u] = 1;
    while (!frontier.empty()) {
      const NodeId x = frontier.front();
      frontier.pop_front();
      w_subtree += weight_[x];
      for (NodeId y : forest_adj_[x]) {
        if (!visited[y]) {
          visited[y] = 1;
          frontier.push_back(y);
        }
      }
    }
    sum += w_subtree;
    largest = std::max(largest, w_subtree);
  }
  return sum - largest + weight_[v];
}

DeletionContext HealingState::begin_deletion(const Graph& g, NodeId v) {
  DASH_CHECK(g.alive(v));
  DeletionContext ctx;
  ctx.deleted = v;
  const auto nbrs = g.neighbors(v);
  ctx.neighbors_g.assign(nbrs.begin(), nbrs.end());
  ctx.forest_neighbors = forest_adj_[v];
  ctx.component_id = component_id_[v];
  ctx.weight = weight_[v];

  // Lemma 2's weight transfer: w(v) joins an arbitrary G'-neighbor; we
  // pick the one with the lowest initial id for determinism. A node with
  // no G'-neighbor donates to a G-neighbor so total weight is conserved
  // whenever any neighbor survives.
  const std::vector<NodeId>* heirs = &ctx.forest_neighbors;
  if (heirs->empty()) heirs = &ctx.neighbors_g;
  if (!heirs->empty()) {
    NodeId heir = (*heirs)[0];
    for (NodeId u : *heirs) {
      if (initial_id_[u] < initial_id_[heir]) heir = u;
    }
    weight_[heir] += weight_[v];
  }
  weight_[v] = 0;

  // Detach v from G'.
  for (NodeId u : forest_adj_[v]) {
    auto& adj = forest_adj_[u];
    adj.erase(std::remove(adj.begin(), adj.end(), v), adj.end());
    --healing_edges_;
  }
  forest_adj_[v].clear();

  // Every surviving neighbor is about to lose its edge to v: the
  // paper's delta is the *net* degree change, so charge the -1 now
  // (healing will add back +1 per reconstruction-tree edge).
  for (NodeId u : ctx.neighbors_g) {
    --delta_[u];
  }
  return ctx;
}

std::vector<NodeId> HealingState::unique_neighbors(
    const DeletionContext& ctx) const {
  // Partition N(v,G) by current component id, excluding v's own id;
  // representative = lowest *initial* id in the partition (Sec. 2.1).
  std::vector<NodeId> reps;
  for (NodeId u : ctx.neighbors_g) {
    if (component_id_[u] == ctx.component_id) continue;
    bool placed = false;
    for (NodeId& r : reps) {
      if (component_id_[r] == component_id_[u]) {
        if (initial_id_[u] < initial_id_[r]) r = u;
        placed = true;
        break;
      }
    }
    if (!placed) reps.push_back(u);
  }
  return reps;
}

std::vector<NodeId> HealingState::reconnection_set(
    const DeletionContext& ctx) const {
  std::vector<NodeId> s = unique_neighbors(ctx);
  // UN(v,G) and N(v,G') are disjoint: forest neighbors carry v's own
  // component id, which unique_neighbors excluded.
  s.insert(s.end(), ctx.forest_neighbors.begin(),
           ctx.forest_neighbors.end());
  sort_by_delta(s);
  return s;
}

void HealingState::sort_by_delta(std::vector<NodeId>& nodes) const {
  std::sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    if (delta_[a] != delta_[b]) return delta_[a] < delta_[b];
    return initial_id_[a] < initial_id_[b];
  });
}

bool HealingState::add_healing_edge(Graph& g, NodeId a, NodeId b) {
  DASH_CHECK(a != b);
  const bool new_in_g = g.add_edge(a, b);
  if (new_in_g) {
    ++delta_[a];
    ++delta_[b];
    max_delta_ever_ = std::max({max_delta_ever_, delta_[a], delta_[b]});
  }
  // Record in E' unless this healing edge is already there (possible if
  // an earlier heal added it and the pair meets again).
  auto& adj = forest_adj_[a];
  if (std::find(adj.begin(), adj.end(), b) == adj.end()) {
    forest_adj_[a].push_back(b);
    forest_adj_[b].push_back(a);
    ++healing_edges_;
  }
  return new_in_g;
}

std::size_t HealingState::propagate_min_id(
    const Graph& g, const std::vector<NodeId>& seeds) {
  if (seeds.empty()) return 0;
  std::uint64_t min_id = component_id_[seeds.front()];
  for (NodeId s : seeds) min_id = std::min(min_id, component_id_[s]);

  // The seeds are connected in G' after reconnection, so one BFS from
  // any seed covers the merged component.
  std::size_t changed = 0;
  for (NodeId x : healing_component(g, seeds.front())) {
    if (component_id_[x] == min_id) continue;
    component_id_[x] = min_id;
    ++id_changes_[x];
    // Lemma 8: a node whose id changes broadcasts it to its G-neighbors.
    msgs_sent_[x] += g.degree(x);
    for (NodeId w : g.neighbors(x)) ++msgs_recv_[w];
    ++changed;
  }
  return changed;
}

std::uint64_t HealingState::total_alive_weight(const Graph& g) const {
  std::uint64_t total = 0;
  for (NodeId v = 0; v < weight_.size(); ++v) {
    if (g.alive(v)) total += weight_[v];
  }
  return total;
}

// ---- checkpointing ----------------------------------------------------

namespace {
constexpr const char* kStateHeader = "dashheal-state-v1";

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  out << v.size();
  for (const auto& x : v) out << ' ' << +x;
  out << '\n';
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  std::size_t n = 0;
  if (!(in >> n)) throw std::runtime_error("state: bad vector length");
  std::vector<T> v(n);
  for (auto& x : v) {
    long long raw;
    if (!(in >> raw)) throw std::runtime_error("state: bad vector entry");
    x = static_cast<T>(raw);
  }
  return v;
}
}  // namespace

void HealingState::save(std::ostream& out) const {
  out << kStateHeader << '\n';
  out << initial_degree_.size() << ' ' << healing_edges_ << ' '
      << max_delta_ever_ << ' ' << next_fresh_id_ << '\n';
  write_vector(out, initial_degree_);
  write_vector(out, initial_id_);
  write_vector(out, component_id_);
  write_vector(out, delta_);
  write_vector(out, weight_);
  write_vector(out, id_changes_);
  write_vector(out, msgs_sent_);
  write_vector(out, msgs_recv_);
  for (const auto& adj : forest_adj_) write_vector(out, adj);
}

HealingState HealingState::load(std::istream& in) {
  std::string header;
  if (!(in >> header) || header != kStateHeader) {
    throw std::runtime_error("state: bad header");
  }
  HealingState st;
  std::size_t n = 0;
  long long max_delta = 0;
  if (!(in >> n >> st.healing_edges_ >> max_delta >> st.next_fresh_id_)) {
    throw std::runtime_error("state: bad counters");
  }
  st.max_delta_ever_ = static_cast<std::int32_t>(max_delta);
  st.initial_degree_ = read_vector<std::size_t>(in);
  st.initial_id_ = read_vector<std::uint64_t>(in);
  st.component_id_ = read_vector<std::uint64_t>(in);
  st.delta_ = read_vector<std::int32_t>(in);
  st.weight_ = read_vector<std::uint64_t>(in);
  st.id_changes_ = read_vector<std::uint32_t>(in);
  st.msgs_sent_ = read_vector<std::uint64_t>(in);
  st.msgs_recv_ = read_vector<std::uint64_t>(in);
  st.forest_adj_.resize(n);
  for (auto& adj : st.forest_adj_) adj = read_vector<NodeId>(in);

  const auto check_size = [n](std::size_t got) {
    if (got != n) throw std::runtime_error("state: field length mismatch");
  };
  check_size(st.initial_degree_.size());
  check_size(st.initial_id_.size());
  check_size(st.component_id_.size());
  check_size(st.delta_.size());
  check_size(st.weight_.size());
  check_size(st.id_changes_.size());
  check_size(st.msgs_sent_.size());
  check_size(st.msgs_recv_.size());
  return st;
}

bool HealingState::operator==(const HealingState& other) const {
  return initial_degree_ == other.initial_degree_ &&
         initial_id_ == other.initial_id_ &&
         component_id_ == other.component_id_ && delta_ == other.delta_ &&
         weight_ == other.weight_ && id_changes_ == other.id_changes_ &&
         msgs_sent_ == other.msgs_sent_ &&
         msgs_recv_ == other.msgs_recv_ &&
         forest_adj_ == other.forest_adj_ &&
         healing_edges_ == other.healing_edges_ &&
         max_delta_ever_ == other.max_delta_ever_ &&
         next_fresh_id_ == other.next_fresh_id_;
}

}  // namespace dash::core
