// factory.h -- construct healing strategies by name (CLI-facing).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"

namespace dash::core {

/// Names accepted: "dash", "sdash", "graph", "binarytree", "line",
/// "none", "capped:<M>" (e.g. "capped:2"). Case-insensitive.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<HealingStrategy> make_strategy(const std::string& name);

/// The strategy set the paper's figures compare.
std::vector<std::unique_ptr<HealingStrategy>> paper_strategies();

/// All registered strategy spellings (for --help texts).
std::vector<std::string> strategy_names();

}  // namespace dash::core
