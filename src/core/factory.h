// factory.h -- construct healing strategies by name (CLI-facing).
//
// All lookups go through one util::Registry instance; make_strategy is
// a thin forwarder kept for source compatibility. Downstream code can
// register its own strategies on healer_registry() and have them served
// everywhere a spec string is accepted (api::Network, sweep_cli, ...).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "util/registry.h"

namespace dash::core {

/// The single registry serving every healing-strategy lookup. Built-in
/// entries: "dash", "sdash[:<slack>]", "graph" (alias "graphheal"),
/// "binarytree" (alias "btree"), "line" (alias "lineheal"), "none"
/// (alias "noheal"), "capped:<M>". Case-insensitive.
util::Registry<HealingStrategy>& healer_registry();

/// Forwards to healer_registry().create(). Throws std::invalid_argument
/// for unknown names, listing every registered spelling.
std::unique_ptr<HealingStrategy> make_strategy(const std::string& name);

/// The strategy set the paper's figures compare.
std::vector<std::unique_ptr<HealingStrategy>> paper_strategies();

/// Spec strings of the paper's figure set, in plot order.
std::vector<std::string> paper_strategy_specs();

/// All registered strategy spellings (for --help texts).
std::vector<std::string> strategy_names();

}  // namespace dash::core
