#include "core/dash.h"

#include "core/reconstruction_tree.h"

namespace dash::core {

HealAction DashStrategy::heal(Graph& g, HealingState& state,
                              const DeletionContext& ctx) {
  HealAction action;
  // reconnection_set() returns UN(v,G) u N(v,G') already sorted by
  // increasing delta -- exactly Algorithm 1 line 4's fill order.
  const std::vector<NodeId> rt = state.reconnection_set(ctx);
  action.reconnection_set_size = rt.size();
  if (rt.empty()) return action;

  for (auto [parent, child] : complete_binary_tree_edges(rt.size())) {
    if (state.add_healing_edge(g, rt[parent], rt[child])) {
      action.new_graph_edges.emplace_back(rt[parent], rt[child]);
    }
  }
  // Algorithm 1 line 5: MINID propagation over the merged tree.
  action.ids_rewritten = state.propagate_min_id(g, rt);
  return action;
}

}  // namespace dash::core
