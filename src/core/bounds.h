// bounds.h -- the paper's closed-form bounds in one place, so tests,
// benches and downstream users evaluate exactly the same expressions.
#pragma once

#include <cstddef>

namespace dash::core::bounds {

/// Theorem 1: maximum degree increase of any node under DASH,
/// 2 * log2(n). Deterministic.
double dash_delta_bound(std::size_t n);

/// Lemma 8: messages sent+received by a node of initial degree d over
/// all deletions, 2 * (d + 2 log2 n) * ln n. With high probability.
double message_bound(std::size_t initial_degree, std::size_t n);

/// Record-breaking bound on the number of times a node's component id
/// can shrink: 2 * ln n. With high probability.
double id_change_bound(std::size_t n);

/// Theorem 2: degree increase any M-bounded locality-aware healer can
/// be forced to pay on an (M+2)-ary tree of size n:
/// floor(log_{M+2}(n)) levels.
double lower_bound_delta(std::size_t n, std::size_t m);

/// Lemma 10: degree-sum increase of the neighbors when a degree-d node
/// of a tree is deleted and healed acyclically: d - 2 (signed; -1 for
/// leaves).
long tree_degree_sum_increase(std::size_t d);

}  // namespace dash::core::bounds
