// no_heal.h -- null strategy: no edges are ever added. The network
// fragments under attack; used as a control to quantify what healing
// buys (largest-component curves) and to exercise the experiment
// machinery without reconnection.
#pragma once

#include "core/strategy.h"

namespace dash::core {

class NoHealStrategy final : public HealingStrategy {
 public:
  std::string name() const override { return "NoHeal"; }
  HealAction heal(Graph& g, HealingState& state,
                  const DeletionContext& ctx) override;
  std::unique_ptr<HealingStrategy> clone() const override {
    return std::make_unique<NoHealStrategy>(*this);
  }
};

}  // namespace dash::core
