#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "graph/traversal.h"
#include "util/check.h"

namespace dash::graph {

using dash::util::Rng;

Graph barabasi_albert(std::size_t n, std::size_t edges_per_node, Rng& rng) {
  const std::size_t m = edges_per_node;
  DASH_CHECK_MSG(m >= 1, "BA needs at least one edge per node");
  DASH_CHECK_MSG(n > m, "BA needs n > edges_per_node");

  Graph g(n);
  // Every node attaches with m edges, so m is the floor (and the mode)
  // of the final degree distribution: pre-sizing the adjacency vectors
  // to it skips the first growth reallocations for every node.
  for (NodeId v = 0; v < n; ++v) g.reserve_neighbors(v, m);
  // Endpoint list: every edge contributes both endpoints, so sampling a
  // uniform element is sampling a node proportionally to its degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * m * n);

  // Seed: star on nodes 0..m (node 0 the hub) -- connected, and gives the
  // first attaching node m+1 a full set of m+1 candidates.
  for (NodeId leaf = 1; leaf <= m; ++leaf) {
    g.add_edge(0, leaf);
    endpoints.push_back(0);
    endpoints.push_back(leaf);
  }

  std::vector<NodeId> targets;
  targets.reserve(m);
  for (NodeId v = static_cast<NodeId>(m) + 1; v < n; ++v) {
    targets.clear();
    // Rejection-sample m distinct targets by degree.
    while (targets.size() < m) {
      const NodeId cand =
          endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
      if (std::find(targets.begin(), targets.end(), cand) == targets.end()) {
        targets.push_back(cand);
      }
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  DASH_CHECK(p >= 0.0 && p <= 1.0);
  Graph g(n);
  if (p <= 0.0 || n < 2) return g;
  if (p >= 1.0) return complete_graph(n);
  // Geometric skipping (Batagelj-Brandes): O(n + m) expected time.
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = rng.uniform01();
    w += 1 + static_cast<std::int64_t>(std::log(1.0 - r) / log1mp);
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
    }
  }
  return g;
}

Graph connected_gnp(std::size_t n, double p, Rng& rng,
                    std::size_t max_tries) {
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    Graph g = erdos_renyi_gnp(n, p, rng);
    if (is_connected(g)) return g;
  }
  DASH_CHECK_MSG(false, "connected_gnp: no connected sample; raise p");
  return Graph(0);  // unreachable
}

Graph random_tree(std::size_t n, Rng& rng) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.below(v));
    g.add_edge(v, parent);
  }
  return g;
}

KaryTree complete_kary_tree(std::size_t arity, std::size_t depth) {
  DASH_CHECK(arity >= 1);
  // Node count: sum_{i=0}^{depth} arity^i.
  std::size_t n = 0;
  std::size_t level_size = 1;
  for (std::size_t d = 0; d <= depth; ++d) {
    n += level_size;
    level_size *= arity;
  }

  KaryTree t;
  t.g = Graph(n);
  t.arity = arity;
  t.depth = depth;
  t.parent.assign(n, kInvalidNode);
  t.level.assign(n, 0);
  t.children.assign(n, {});

  NodeId next = 1;
  for (NodeId v = 0; v < n && next < n; ++v) {
    for (std::size_t c = 0; c < arity && next < n; ++c) {
      t.g.add_edge(v, next);
      t.parent[next] = v;
      t.level[next] = t.level[v] + 1;
      t.children[v].push_back(next);
      ++next;
    }
  }
  return t;
}

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

Graph cycle_graph(std::size_t n) {
  DASH_CHECK_MSG(n == 0 || n >= 3, "cycle needs >= 3 nodes");
  Graph g = path_graph(n);
  if (n >= 3) g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph star_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) g.reserve_neighbors(a, n - 1);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  DASH_CHECK_MSG(k >= 1 && 2 * k < n, "watts_strogatz needs 2k < n");
  Graph g(n);
  // Ring lattice degree is exactly 2k before rewiring.
  for (NodeId v = 0; v < n; ++v) g.reserve_neighbors(v, 2 * k);
  // Ring lattice: each node connected to k neighbors on each side.
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      g.add_edge(v, static_cast<NodeId>((v + j) % n));
    }
  }
  // Rewire each lattice edge (v, v+j) with probability beta.
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      if (!rng.chance(beta)) continue;
      const auto old = static_cast<NodeId>((v + j) % n);
      if (!g.has_edge(v, old)) continue;  // already rewired away
      if (g.degree(v) >= n - 1) continue; // saturated; nothing to rewire to
      NodeId fresh;
      do {
        fresh = static_cast<NodeId>(rng.below(n));
      } while (fresh == v || g.has_edge(v, fresh));
      g.remove_edge(v, old);
      g.add_edge(v, fresh);
    }
  }
  return g;
}

}  // namespace dash::graph
