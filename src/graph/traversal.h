// traversal.h -- BFS-based queries over the alive subgraph: distances,
// connectivity, components, eccentricity. These back the stretch metric
// (Fig. 10) and every connectivity invariant check.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dash::graph {

/// Single-source BFS distances over alive nodes. Entries for dead or
/// unreachable nodes are kUnreachable. `src` must be alive.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

/// Shortest-path distance between two alive nodes (kUnreachable if
/// disconnected). Early-exits once `dst` is settled.
std::uint32_t bfs_distance(const Graph& g, NodeId src, NodeId dst);

/// True if all alive nodes form a single connected component.
/// Vacuously true for 0 or 1 alive nodes.
bool is_connected(const Graph& g);

/// Component labels for alive nodes; dead nodes get kInvalidComponent.
/// Labels are dense 0..k-1 in order of discovery from ascending node ids.
inline constexpr std::uint32_t kInvalidComponent =
    std::numeric_limits<std::uint32_t>::max();

struct Components {
  std::vector<std::uint32_t> label;   ///< per node id
  std::vector<std::uint32_t> sizes;   ///< per component label
  std::size_t count() const { return sizes.size(); }
  std::size_t largest() const;
};

Components connected_components(const Graph& g);

/// Eccentricity of `src` (max BFS distance to any reachable alive node).
std::uint32_t eccentricity(const Graph& g, NodeId src);

/// Diameter of the alive subgraph (max eccentricity); kUnreachable if
/// the graph is disconnected. O(n * m) -- intended for test-sized graphs.
std::uint32_t diameter(const Graph& g);

/// All-pairs shortest-path matrix (row-major over node ids, dead rows
/// filled with kUnreachable). O(n * m) time, O(n^2) space; used by the
/// stretch metric on graphs of at most a few thousand nodes.
std::vector<std::uint32_t> all_pairs_distances(const Graph& g);

}  // namespace dash::graph
