// traversal.h -- BFS-based queries over the alive subgraph: distances,
// connectivity, components, eccentricity. These back the stretch metric
// (Fig. 10) and every connectivity invariant check.
//
// Two tiers:
//
//   * Flat engine: the scratch-taking overloads run on a FlatView (CSR
//     snapshot, see graph/flat_view.h) with a caller-owned
//     TraversalScratch -- zero allocation per traversal, epoch-stamped
//     distance buffers, an index-based array frontier. This is the hot
//     path every repeated-traversal consumer (stretch sampling, the
//     invariant battery, per-round connectivity in kBfs mode) runs on.
//
//   * Legacy signatures: kept as thin wrappers that fetch the graph's
//     cached flat view and a thread-local scratch, materializing the
//     same values (bit-identical) the historical per-call-allocating
//     implementations returned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/flat_view.h"
#include "graph/graph.h"

namespace dash::graph {

/// Reusable BFS workspace: epoch-stamped distance/visited buffers plus
/// an index-based frontier queue (each node enqueues at most once, so a
/// flat array with head/tail cursors replaces the deque -- no per-call
/// allocation once warm). The visited stamp is one *byte* per node (a
/// wrapping 8-bit epoch, cleared wholesale every 255 traversals), so
/// the per-edge visited check -- the single hottest memory access in
/// the codebase -- touches an array small enough to stay L1-resident.
/// One scratch serves any number of sequential traversals; concurrent
/// traversals need one scratch each.
class TraversalScratch {
 public:
  /// Distance of v from the last traversal's source; kUnreachable for
  /// nodes that traversal never visited (dead, disconnected, or out of
  /// range of the last run). Valid until the next traversal using this
  /// scratch.
  std::uint32_t distance(NodeId v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kUnreachable;
  }

  /// Nodes the last single-source traversal visited, level by level
  /// (the source first, then depth 1, ...; distances nondecreasing).
  /// Valid until the next traversal.
  std::span<const NodeId> visited() const {
    return {frontier_.data(), visited_count_};
  }

 private:
  /// Size buffers for an n-node id space and open a fresh epoch.
  void begin(std::size_t n);

  std::vector<std::uint32_t> dist_;   ///< valid iff stamp_[v] == epoch_
  std::vector<std::uint8_t> stamp_;
  std::vector<NodeId> frontier_;      ///< array-backed FIFO, capacity n
  /// Current-frontier membership bits for the bottom-up sweep; all
  /// zero between traversals (each level clears the bits it set).
  std::vector<std::uint64_t> frontier_bits_;
  /// Compacting pool of still-unvisited ids, built on the first
  /// bottom-up level of a traversal so later sweeps skip the settled
  /// majority.
  std::vector<NodeId> unvisited_;
  std::size_t visited_count_ = 0;
  std::uint8_t epoch_ = 0;

  friend std::size_t bfs_distances(const FlatView& view, NodeId src,
                                   TraversalScratch& scratch);
  friend std::uint32_t bfs_distance(const Graph& g, NodeId src,
                                    NodeId dst);
  friend void connected_components(const FlatView& view,
                                   TraversalScratch& scratch,
                                   struct Components& out);
};

// ---- flat engine (zero-alloc, scratch-taking) ------------------------

/// Single-source BFS over the view's alive subgraph. Distances are read
/// through scratch.distance(); the visited set (discovery order) through
/// scratch.visited(). Returns the number of nodes reached (including
/// src). `src` must be alive in the snapshot.
std::size_t bfs_distances(const FlatView& view, NodeId src,
                          TraversalScratch& scratch);

/// True if all alive nodes of the snapshot form a single connected
/// component. Vacuously true for 0 or 1 alive nodes.
bool is_connected(const FlatView& view, TraversalScratch& scratch);

/// Component labels for alive nodes; dead nodes get kInvalidComponent.
/// Labels are dense 0..k-1 in order of discovery from ascending node ids.
inline constexpr std::uint32_t kInvalidComponent =
    std::numeric_limits<std::uint32_t>::max();

struct Components {
  std::vector<std::uint32_t> label;   ///< per node id
  std::vector<std::uint32_t> sizes;   ///< per component label
  std::size_t count() const { return sizes.size(); }
  std::size_t largest() const;
};

/// Label the snapshot's components into `out`, reusing its buffers.
void connected_components(const FlatView& view, TraversalScratch& scratch,
                          Components& out);

/// Eccentricity of `src` (max BFS distance to any reachable alive node).
std::uint32_t eccentricity(const FlatView& view, NodeId src,
                           TraversalScratch& scratch);

// ---- legacy signatures (thin wrappers over the flat engine) ----------

/// Single-source BFS distances over alive nodes. Entries for dead or
/// unreachable nodes are kUnreachable. `src` must be alive.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

/// Shortest-path distance between two alive nodes (kUnreachable if
/// disconnected). Early-exits once `dst` is settled.
std::uint32_t bfs_distance(const Graph& g, NodeId src, NodeId dst);

/// True if all alive nodes form a single connected component.
/// Vacuously true for 0 or 1 alive nodes.
bool is_connected(const Graph& g);

Components connected_components(const Graph& g);

/// Eccentricity of `src` (max BFS distance to any reachable alive node).
std::uint32_t eccentricity(const Graph& g, NodeId src);

/// Diameter of the alive subgraph (max eccentricity); kUnreachable if
/// the graph is disconnected. O(n * m) -- intended for test-sized graphs.
std::uint32_t diameter(const Graph& g);

/// All-pairs shortest-path matrix (row-major over node ids, dead rows
/// filled with kUnreachable). O(n * m) time, O(n^2) space; used by the
/// stretch metric on graphs of at most a few thousand nodes.
std::vector<std::uint32_t> all_pairs_distances(const Graph& g);

}  // namespace dash::graph
