// graph.h -- dynamic simple undirected graph with node deletion.
//
// This is the substrate every healing experiment runs on. Requirements
// driving the design:
//   * node deletion must return the surviving neighbor set (the healing
//     algorithms operate exactly on that set);
//   * node ids must be stable across deletions (healing state is keyed
//     by id);
//   * edge insertion must report whether the edge was new (degree -- and
//     therefore the paper's delta(v) -- only grows for genuinely new
//     edges);
//   * adjacency iteration must be cheap and deterministic (sorted
//     blocks, so identical seeds give identical runs).
//
// Storage is a slab/pool SoA layout rather than a vector of vectors:
// every vertex owns one contiguous block {offset_, degree_, capacity_}
// inside a single shared neighbor slab. Blocks have power-of-two
// capacities, grow by doubling, and are recycled through per-class free
// lists when a node dies or outgrows its block -- so a million-node
// graph is three flat arrays plus one slab instead of a million heap
// allocations, and iterating a neighborhood is one contiguous span.
// Insertion keeps each block sorted (memmove within the block), so
// iteration order -- and every byte downstream of it -- is identical to
// the historical sorted-vector layout.
//
// Every mutation also appends the vertices it touched to a bounded
// *touched log* (monotone sequence numbers, prefix-compacted when it
// outgrows its cap). Snapshot consumers (graph/flat_view.h) remember
// the log position they last synced at and patch only the touched
// vertices instead of re-walking O(n + m) state; a consumer whose
// position fell behind the compacted prefix simply rebuilds in full.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/flat_view.h"
#include "graph/types.h"

namespace dash::graph {

class Graph {
 public:
  /// Create n isolated, alive nodes with ids 0..n-1.
  explicit Graph(std::size_t n = 0);

  /// Copies duplicate the topology but are *distinct instances*: the
  /// copy draws a fresh uid(), so snapshot consumers synced to the
  /// original never delta-patch against the copy's (independently
  /// mutating) touched log.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Number of node ids ever allocated (alive + deleted).
  std::size_t num_nodes() const { return degree_.size(); }
  /// Number of currently alive nodes.
  std::size_t num_alive() const { return alive_count_; }
  /// Number of edges between alive nodes.
  std::size_t num_edges() const { return edge_count_; }

  bool alive(NodeId v) const { return alive_[v]; }

  /// Append one new isolated node; returns its id.
  NodeId add_node();

  /// Add undirected edge {a,b}. Both endpoints must be alive and distinct.
  /// Returns true if the edge was newly inserted, false if it already
  /// existed (simple graph: parallel edges are not represented).
  bool add_edge(NodeId a, NodeId b);

  /// Remove edge {a,b} if present; returns true if an edge was removed.
  bool remove_edge(NodeId a, NodeId b);

  bool has_edge(NodeId a, NodeId b) const;

  /// Delete node v: marks it dead and removes all incident edges.
  /// Returns v's neighbor set at the moment of deletion (sorted).
  std::vector<NodeId> delete_node(NodeId v);

  /// Sorted adjacency of an alive node: a view into the node's slab
  /// block, valid until the next mutation of the graph (any mutation
  /// may move or recycle blocks). Callers that need the list across a
  /// mutation must copy it first.
  std::span<const NodeId> neighbors(NodeId v) const {
    check_alive(v);
    return {slab_.data() + offset_[v], degree_[v]};
  }

  std::size_t degree(NodeId v) const {
    check_alive(v);
    return degree_[v];
  }

  /// Pre-size v's slab block for `expected` neighbors. Capacity only --
  /// topology, degree, and the generation are untouched. Generators
  /// with known degree structure (Barabasi-Albert adds m edges per
  /// node) use this to skip incremental block doubling.
  void reserve_neighbors(NodeId v, std::size_t expected);

  /// All alive node ids, ascending. Allocates per call; traversal-heavy
  /// readers should use flat_view().alive_nodes() instead.
  std::vector<NodeId> alive_nodes() const;

  /// Monotone mutation counter: bumped by every topology change (node
  /// add/delete, edge insert/erase). Snapshots key their freshness on
  /// it.
  std::uint64_t generation() const { return generation_; }

  /// The graph's cached CSR snapshot, refreshed lazily when stale --
  /// every traversal between two mutations shares one refresh, and a
  /// refresh patches only the touched vertices when the touched log
  /// allows it. The returned view is valid until the next mutation.
  /// Not synchronized: concurrent readers must ensure freshness (call
  /// this once) before sharing the view across threads.
  const FlatView& flat_view() const;

  /// Structural equality on the alive subgraph (same alive set + edges).
  bool same_topology(const Graph& other) const;

  // ---- delta-snapshot interface (see graph/flat_view.h) --------------

  /// Process-unique instance id; fresh per constructed/copied graph,
  /// stolen by moves. Snapshot consumers patch only against the
  /// instance they were built from.
  std::uint64_t uid() const { return uid_; }

  /// Sequence number of the oldest retained touched-log entry.
  std::uint64_t touched_begin() const { return touched_base_; }
  /// Sequence number one past the newest touched-log entry.
  std::uint64_t touched_end() const {
    return touched_base_ + touched_.size();
  }
  /// Retained touched vertices (entry i has sequence touched_begin()+i;
  /// duplicates are expected, consumers dedupe).
  const std::vector<NodeId>& touched_log() const { return touched_; }

  // ---- slab introspection (tests, telemetry) --------------------------

  /// Total slab entries (live blocks + recycled free blocks).
  std::size_t slab_size() const { return slab_.size(); }
  /// Entries currently parked on the per-class free lists.
  std::size_t slab_free_entries() const { return free_entries_; }

 private:
  friend class FlatView;

  void check_alive(NodeId v) const;
  void touch(NodeId v);
  /// Pop a block of `cap` (power of two) entries from the free list or
  /// extend the slab. Returns the block's offset.
  std::uint32_t alloc_block(std::uint32_t cap);
  void free_block(std::uint32_t offset, std::uint32_t cap);
  /// Move v's block to one of capacity `new_cap`, preserving contents.
  void regrow(NodeId v, std::uint32_t new_cap);
  /// Insert x into v's sorted block (growing it if full); returns true
  /// on insert, false if already present.
  bool block_insert(NodeId v, NodeId x);
  /// Erase x from v's sorted block; returns true if it was present.
  bool block_erase(NodeId v, NodeId x);

  // SoA per-vertex block descriptors into the shared slab. capacity_ is
  // 0 (no block yet) or a power of two >= 2.
  std::vector<std::uint32_t> offset_;
  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> capacity_;
  std::vector<NodeId> slab_;
  /// Free blocks per power-of-two class: free_lists_[k] holds offsets
  /// of recycled blocks with capacity 1<<k (LIFO, so reuse is
  /// deterministic and cache-warm).
  std::vector<std::vector<std::uint32_t>> free_lists_;
  std::size_t free_entries_ = 0;

  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  std::size_t edge_count_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t uid_ = 0;

  /// Touched-vertex log: compacted (prefix dropped, base advanced) when
  /// it outgrows ~2n entries, which forces lagging consumers into the
  /// full-rebuild path they would want anyway.
  std::vector<NodeId> touched_;
  std::uint64_t touched_base_ = 0;

  mutable FlatView view_;  ///< lazy CSR cache, stamped by generation_
};

}  // namespace dash::graph
