// graph.h -- dynamic simple undirected graph with node deletion.
//
// This is the substrate every healing experiment runs on. Requirements
// driving the design:
//   * node deletion must return the surviving neighbor set (the healing
//     algorithms operate exactly on that set);
//   * node ids must be stable across deletions (healing state is keyed
//     by id);
//   * edge insertion must report whether the edge was new (degree -- and
//     therefore the paper's delta(v) -- only grows for genuinely new
//     edges);
//   * adjacency iteration must be cheap and deterministic (sorted
//     vectors, so identical seeds give identical runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/flat_view.h"
#include "graph/types.h"

namespace dash::graph {

class Graph {
 public:
  /// Create n isolated, alive nodes with ids 0..n-1.
  explicit Graph(std::size_t n = 0);

  /// Number of node ids ever allocated (alive + deleted).
  std::size_t num_nodes() const { return adjacency_.size(); }
  /// Number of currently alive nodes.
  std::size_t num_alive() const { return alive_count_; }
  /// Number of edges between alive nodes.
  std::size_t num_edges() const { return edge_count_; }

  bool alive(NodeId v) const { return alive_[v]; }

  /// Append one new isolated node; returns its id.
  NodeId add_node();

  /// Add undirected edge {a,b}. Both endpoints must be alive and distinct.
  /// Returns true if the edge was newly inserted, false if it already
  /// existed (simple graph: parallel edges are not represented).
  bool add_edge(NodeId a, NodeId b);

  /// Remove edge {a,b} if present; returns true if an edge was removed.
  bool remove_edge(NodeId a, NodeId b);

  bool has_edge(NodeId a, NodeId b) const;

  /// Delete node v: marks it dead and removes all incident edges.
  /// Returns v's neighbor set at the moment of deletion (sorted).
  std::vector<NodeId> delete_node(NodeId v);

  /// Sorted adjacency list of an alive node.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// Pre-size v's adjacency vector for `expected` neighbors. Capacity
  /// only -- topology, degree, and the generation are untouched.
  /// Generators with known degree structure (Barabasi-Albert adds m
  /// edges per node) use this to skip incremental reallocation.
  void reserve_neighbors(NodeId v, std::size_t expected);

  /// All alive node ids, ascending. Allocates per call; traversal-heavy
  /// readers should use flat_view().alive_nodes() instead.
  std::vector<NodeId> alive_nodes() const;

  /// Monotone mutation counter: bumped by every topology change (node
  /// add/delete, edge insert/erase). Snapshots key their freshness on
  /// it.
  std::uint64_t generation() const { return generation_; }

  /// The graph's cached CSR snapshot, rebuilt lazily when stale --
  /// every traversal between two mutations shares one rebuild. The
  /// returned view is valid until the next mutation. Not synchronized:
  /// concurrent readers must ensure freshness (call this once) before
  /// sharing the view across threads.
  const FlatView& flat_view() const;

  /// Structural equality on the alive subgraph (same alive set + edges).
  bool same_topology(const Graph& other) const;

 private:
  void check_alive(NodeId v) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  std::size_t edge_count_ = 0;
  std::uint64_t generation_ = 0;
  mutable FlatView view_;  ///< lazy CSR cache, stamped by generation_
};

}  // namespace dash::graph
