// flat_view.h -- CSR-style snapshot of a Graph's alive subgraph: flat
// offset/degree arrays plus one packed neighbor array, the
// cache-friendly layout every hot traversal runs on.
//
// A FlatView is a *snapshot*: it is stamped with the generation of the
// Graph it was built from and must be refreshed after any mutation. The
// canonical instance is the one Graph itself caches (Graph::flat_view()
// refreshes lazily on generation mismatch), so repeated traversals
// between mutations -- an APSP stretch sample, the invariant battery,
// a components labelling -- all share a single refresh.
//
// The view mirrors the graph's slab layout (graph.h): per-vertex
// {offset, degree} descriptors into an edges array shaped like the
// graph's neighbor slab. That makes *delta patching* sound: refresh()
// replays the graph's touched-vertex log and re-copies only the blocks
// of vertices that changed since the view last synced -- a vertex's
// block can only move, grow, or be recycled by operations that log that
// vertex, so every untouched mirror segment is still exact. When the
// log window no longer covers the view (first build, a different graph
// instance, a compacted log) or the touched set exceeds
// kPatchFractionLimit of the id space, refresh() falls back to a full
// O(n + slab) rebuild; both paths are counted so benches can report the
// split.
//
// Reads of a *fresh* view are safe from any number of threads (the
// parallel stretch path hands one view to every worker); the lazy
// refresh itself is not synchronized, so ensure freshness (call
// Graph::flat_view() once) before fanning out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace dash::graph {

class Graph;

class FlatView {
 public:
  /// Touched fraction of the id space beyond which refresh() prefers
  /// one full rebuild over per-vertex patching.
  static constexpr double kPatchFractionLimit = 0.25;

  /// True when this snapshot was built from a graph at `generation`.
  bool matches(std::uint64_t generation) const {
    return valid_ && generation_ == generation;
  }

  /// Rebuild the mirror from g's current state unconditionally.
  /// O(n + slab); buffers are reused, so a long-lived view allocates
  /// only when the graph outgrows it.
  void rebuild(const Graph& g);

  /// Bring the mirror up to date: patch only the vertices g's touched
  /// log names since the last sync when the log window allows it, else
  /// fall back to rebuild(). The cheap path is O(touched + alive-set
  /// edits) -- churn rounds touch a tiny fraction of a large graph.
  void refresh(const Graph& g);

  /// Node-id space of the snapshot (alive + dead, like Graph).
  std::size_t num_nodes() const { return degrees_.size(); }
  std::size_t num_alive() const { return alive_.size(); }

  /// Packed sorted neighbors of v (empty for dead nodes).
  std::span<const NodeId> neighbors(NodeId v) const {
    return {edges_.data() + offsets_[v], degrees_[v]};
  }

  /// Total directed adjacency entries (2m) -- the BFS direction
  /// heuristic budgets against it.
  std::size_t num_edge_entries() const { return edge_entries_; }

  std::size_t degree(NodeId v) const { return degrees_[v]; }

  /// Alive node ids, ascending -- cached at refresh, so per-sample
  /// consumers (the stretch tracker) stop re-allocating the list.
  const std::vector<NodeId>& alive_nodes() const { return alive_; }

  // ---- refresh telemetry ---------------------------------------------

  /// Full O(n + slab) rebuilds this view has performed.
  std::size_t full_rebuilds() const { return full_rebuilds_; }
  /// Delta-patched refreshes (the cheap path).
  std::size_t patched_refreshes() const { return patched_refreshes_; }
  /// Distinct vertices re-mirrored across all patched refreshes.
  std::size_t vertices_patched() const { return vertices_patched_; }

 private:
  /// Patch against g's touched log; false when the window does not
  /// cover this view or the touched set is too large.
  bool try_patch(const Graph& g);

  bool valid_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t graph_uid_ = 0;  ///< instance the mirror tracks
  std::uint64_t log_seq_ = 0;    ///< touched-log position last synced
  std::vector<std::uint32_t> offsets_;  ///< per-vertex slab offsets
  std::vector<std::uint32_t> degrees_;
  std::vector<NodeId> edges_;  ///< slab mirror (gaps where blocks are free)
  std::size_t edge_entries_ = 0;  ///< 2m, maintained incrementally
  std::vector<NodeId> alive_;     ///< alive ids, ascending

  // Patch scratch (persisted so warm refreshes allocate nothing).
  std::vector<std::uint64_t> stamp_;
  std::uint64_t stamp_epoch_ = 0;
  std::vector<NodeId> touched_scratch_;
  std::vector<NodeId> died_scratch_;
  std::vector<NodeId> born_scratch_;
  std::vector<NodeId> alive_scratch_;

  std::size_t full_rebuilds_ = 0;
  std::size_t patched_refreshes_ = 0;
  std::size_t vertices_patched_ = 0;
};

}  // namespace dash::graph
