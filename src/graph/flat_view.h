// flat_view.h -- CSR (compressed sparse row) snapshot of a Graph's
// alive subgraph: one offsets array plus one packed neighbor array,
// the cache-friendly layout every hot traversal runs on.
//
// A FlatView is a *snapshot*: it is stamped with the generation of the
// Graph it was built from and must be rebuilt after any mutation. The
// canonical instance is the one Graph itself caches (Graph::flat_view()
// rebuilds lazily on generation mismatch), so repeated traversals
// between mutations -- an APSP stretch sample, the invariant battery,
// a components labelling -- all share a single rebuild.
//
// Reads of a *fresh* view are safe from any number of threads (the
// parallel stretch path hands one view to every worker); the lazy
// rebuild itself is not synchronized, so ensure freshness (call
// Graph::flat_view() once) before fanning out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace dash::graph {

class Graph;

class FlatView {
 public:
  /// True when this snapshot was built from a graph at `generation`.
  bool matches(std::uint64_t generation) const {
    return valid_ && generation_ == generation;
  }

  /// Rebuild the CSR arrays from g's current alive subgraph and stamp
  /// the view with g.generation(). O(n + m); buffers are reused, so a
  /// long-lived view allocates only when the graph outgrows it.
  void rebuild(const Graph& g);

  /// Node-id space of the snapshot (alive + dead, like Graph).
  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_alive() const { return alive_.size(); }

  /// Packed sorted neighbors of v (empty for dead nodes).
  std::span<const NodeId> neighbors(NodeId v) const {
    return {edges_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Total directed adjacency entries (2m) -- the BFS direction
  /// heuristic budgets against it.
  std::size_t num_edge_entries() const { return edges_.size(); }

  std::size_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Alive node ids, ascending -- cached at rebuild, so per-sample
  /// consumers (the stretch tracker) stop re-allocating the list.
  const std::vector<NodeId>& alive_nodes() const { return alive_; }

 private:
  bool valid_ = false;
  std::uint64_t generation_ = 0;
  std::vector<std::uint32_t> offsets_;  ///< n+1 prefix sums of degrees
  std::vector<NodeId> edges_;           ///< 2m packed neighbor ids
  std::vector<NodeId> alive_;           ///< alive ids, ascending
};

}  // namespace dash::graph
