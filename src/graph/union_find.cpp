#include "graph/union_find.h"

#include "util/check.h"

namespace dash::graph {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  sets_ = n;
}

NodeId UnionFind::find(NodeId v) {
  DASH_CHECK(v < parent_.size());
  NodeId root = v;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[v] != root) {
    NodeId next = parent_[v];
    parent_[v] = root;
    v = next;
  }
  return root;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  return unite_report(a, b).merged;
}

UnionFind::UniteReport UnionFind::unite_report(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return {ra, ra, false};
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return {ra, rb, true};
}

std::size_t UnionFind::set_size(NodeId v) { return size_[find(v)]; }

NodeId UnionFind::add() {
  const NodeId v = static_cast<NodeId>(parent_.size());
  parent_.push_back(v);
  size_.push_back(1);
  ++sets_;
  return v;
}

void UnionFind::reroot(std::span<const NodeId> members) {
  DASH_CHECK_MSG(!members.empty(), "reroot needs at least one member");
  const NodeId root = members.front();
  DASH_CHECK(root < parent_.size());
  parent_[root] = root;
  size_[root] = static_cast<std::uint32_t>(members.size());
  for (std::size_t i = 1; i < members.size(); ++i) {
    const NodeId v = members[i];
    DASH_CHECK(v < parent_.size());
    parent_[v] = root;
    size_[v] = 1;
  }
}

}  // namespace dash::graph
