#include "graph/union_find.h"

#include "util/check.h"

namespace dash::graph {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  sets_ = n;
}

NodeId UnionFind::find(NodeId v) {
  DASH_CHECK(v < parent_.size());
  NodeId root = v;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[v] != root) {
    NodeId next = parent_[v];
    parent_[v] = root;
    v = next;
  }
  return root;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

std::size_t UnionFind::set_size(NodeId v) { return size_[find(v)]; }

}  // namespace dash::graph
