// types.h -- fundamental identifiers shared by all graph code.
#pragma once

#include <cstdint>
#include <limits>

namespace dash::graph {

/// Dense node identifier; nodes are numbered 0..n-1 at construction and
/// keep their id for the lifetime of the graph (deletion marks a node
/// dead, it never renumbers).
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Distance value returned by BFS for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace dash::graph
