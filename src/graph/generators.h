// generators.h -- random and structured graph generators.
//
// The paper's experiments (Sec. 4.1) run on Barabasi-Albert preferential
// attachment graphs; the lower bound (Sec. 3.2) needs complete (M+2)-ary
// trees; tests exercise the remaining families.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dash::graph {

/// Barabasi-Albert preferential attachment [Barabasi & Albert 1999].
/// Starts from a star on `edges_per_node`+1 nodes and then attaches each
/// new node to `edges_per_node` distinct existing nodes sampled
/// proportionally to degree (endpoint-list sampling). Always connected.
Graph barabasi_albert(std::size_t n, std::size_t edges_per_node,
                      dash::util::Rng& rng);

/// Erdos-Renyi G(n, p). May be disconnected.
Graph erdos_renyi_gnp(std::size_t n, double p, dash::util::Rng& rng);

/// Erdos-Renyi G(n, p) conditioned on connectivity: redraws until the
/// sample is connected (caller must choose p comfortably above the
/// connectivity threshold ln(n)/n; gives up after `max_tries`).
Graph connected_gnp(std::size_t n, double p, dash::util::Rng& rng,
                    std::size_t max_tries = 100);

/// Uniform-attachment random tree: node i >= 1 picks a uniformly random
/// parent among 0..i-1. Always a tree on n nodes.
Graph random_tree(std::size_t n, dash::util::Rng& rng);

/// Complete k-ary tree of the given depth plus its structure metadata,
/// which the LEVELATTACK adversary needs (levels, parents, children).
/// depth 0 is a single root. Node 0 is the root; children are allocated
/// in BFS order.
struct KaryTree {
  Graph g;
  std::size_t arity = 0;
  std::size_t depth = 0;
  std::vector<NodeId> parent;               ///< kInvalidNode for the root
  std::vector<std::uint32_t> level;         ///< root has level 0
  std::vector<std::vector<NodeId>> children;
};

KaryTree complete_kary_tree(std::size_t arity, std::size_t depth);

Graph path_graph(std::size_t n);
Graph cycle_graph(std::size_t n);
Graph star_graph(std::size_t n);  ///< node 0 is the hub
Graph complete_graph(std::size_t n);
Graph grid_graph(std::size_t rows, std::size_t cols);

/// Watts-Strogatz small-world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta. Used as an additional
/// test family (the paper motivates overlays, which are small-world-ish).
Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     dash::util::Rng& rng);

}  // namespace dash::graph
