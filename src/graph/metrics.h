// metrics.h -- static degree/size metrics of the alive subgraph.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace dash::graph {

/// Maximum degree over alive nodes (0 for an empty graph).
std::size_t max_degree(const Graph& g);

/// Node id attaining the maximum degree (lowest id wins ties);
/// kInvalidNode for an empty graph.
NodeId argmax_degree(const Graph& g);

/// Mean degree over alive nodes (0 for an empty graph).
double average_degree(const Graph& g);

/// histogram[d] = number of alive nodes with degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

}  // namespace dash::graph
