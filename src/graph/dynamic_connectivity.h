// dynamic_connectivity.h -- incremental connectivity over a mutating
// Graph, replacing the per-round O(n+m) BFS that connectivity-hungry
// observers used to pay.
//
// The tracker mirrors the engine's mutation stream instead of
// re-scanning:
//
//   * edge/node insertions are pure union-find merges (the insert-only
//     direction is exact and O(alpha) per event);
//   * deletions cannot be expressed in a union-find, so they follow an
//     amortized rebuild-on-delete path: a deletion whose caller can
//     certify "the survivors stayed mutually connected" (the healing
//     layer proves this through the healing forest: one shared
//     component id => one G'-tree => reconnected, see
//     api::Network::remove) costs O(alpha); an uncertified deletion
//     only *seeds* a lazy re-scan. The next query runs one BFS over
//     exactly the affected region -- never the whole graph -- and
//     re-partitions it with UnionFind::reroot.
//
// Cost model: a certified round touching k vertices pays O(k * alpha);
// an uncertified round defers an O(|affected component|) re-scan to the
// next query. Component count and largest-component size are maintained
// as a size histogram, so both are O(1) after the flush.
//
// Correctness invariant (the differential tests replay thousands of
// randomized schedules against traversal::connected_components to hold
// this): between flushes every union-find set is a union of true
// components, and every set that may be split finer than the union-find
// knows has at least one alive pending seed in each of its true
// components -- so the flush BFS, started from the alive seeds, visits
// every alive member of every stale set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/union_find.h"

namespace dash::graph {

class DynamicConnectivity {
 public:
  /// Snapshot the component structure of `g` (one BFS-equivalent pass).
  /// The tracker keeps a pointer to `g` and must observe every later
  /// mutation through the methods below, in the order the graph applies
  /// them -- it is the engine's job (api::Network) to guarantee that.
  explicit DynamicConnectivity(const Graph& g);

  // ---- mutation stream ------------------------------------------------

  /// A fresh isolated node was appended (Graph::add_node). `v` must be
  /// the id the graph returned, i.e. ids stay dense.
  void node_added(NodeId v);

  /// Edge {a,b} was inserted between alive nodes. Idempotent for edges
  /// the tracker already considers merged.
  void edge_added(NodeId a, NodeId b);

  /// Edge {a,b} was removed (both endpoints still alive). The possible
  /// component split is resolved lazily by the next query.
  void edge_removed(NodeId a, NodeId b);

  /// Node `v` was deleted; `survivors` is its neighbor set at the
  /// moment of deletion (all still alive). `may_split` = false is the
  /// caller's certificate that the survivors remained mutually
  /// connected without v (the O(alpha) fast path); true seeds the lazy
  /// re-scan of v's component. With fewer than two survivors no split
  /// is possible and the certificate is irrelevant.
  void node_removed(NodeId v, const std::vector<NodeId>& survivors,
                    bool may_split);

  /// Simultaneous multi-node deletion (the footnote-1 batch protocol):
  /// `survivors` is the union of the batch members' surviving neighbor
  /// sets. `may_split` = false is the caller's certificate that the
  /// survivors are still mutually connected without the batch (same
  /// forest argument as node_removed: truncate any survivor pair's old
  /// path at the first batch member and route through the survivors'
  /// shared component) -- the whole round then costs O(|members| *
  /// alpha) with no re-scan. true seeds the lazy re-scan. With fewer
  /// than two survivors the certificate is irrelevant.
  void batch_removed(const std::vector<NodeId>& members,
                     const std::vector<NodeId>& survivors, bool may_split);

  // ---- queries (amortized: flush any pending re-scan first) -----------

  /// All alive nodes form one component (vacuously true for <= 1).
  bool connected();

  /// Number of components among alive nodes (0 when none are alive).
  std::size_t component_count();

  /// Size of the largest component (0 when no nodes are alive).
  std::size_t largest_component();

  /// Both nodes alive and in the same component.
  bool same_component(NodeId a, NodeId b);

  /// Size of the component containing alive node v.
  std::size_t component_size(NodeId v);

  // ---- instrumentation ------------------------------------------------

  /// Number of lazy re-scan flushes performed so far.
  std::size_t rebuilds() const { return rebuilds_; }
  /// Total nodes visited across all re-scans (the amortized delete
  /// cost; certified rounds contribute nothing).
  std::size_t nodes_rescanned() const { return nodes_rescanned_; }
  /// True while an un-flushed split candidate is queued.
  bool rescan_pending() const { return !seeds_.empty(); }

 private:
  void flush();
  void seed(NodeId v);
  void hist_add(std::size_t s);
  void hist_remove(std::size_t s);
  /// Shared deletion bookkeeping: drop one alive member from v's set.
  void drop_alive_member(NodeId v);

  const Graph* g_;
  UnionFind uf_;
  /// Alive members per set, valid at current roots only.
  std::vector<std::uint32_t> alive_size_;
  /// Histogram of alive-set sizes; largest_ is its maintained maximum.
  std::vector<std::uint32_t> size_count_;
  std::size_t largest_ = 0;
  std::size_t components_ = 0;

  std::vector<NodeId> seeds_;
  std::vector<char> is_seed_;
  /// Epoch-stamped scratch marks (no O(n) clearing per flush).
  std::vector<std::uint64_t> visit_epoch_;
  std::vector<std::uint64_t> root_epoch_;
  std::uint64_t epoch_ = 0;
  /// Re-scan workspace: the flush BFS packs its groups here
  /// (scan_offsets_ delimits them), reused across flushes.
  std::vector<NodeId> scan_nodes_;
  std::vector<std::size_t> scan_offsets_;

  std::size_t rebuilds_ = 0;
  std::size_t nodes_rescanned_ = 0;
};

}  // namespace dash::graph
