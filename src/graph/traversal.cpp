#include "graph/traversal.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace dash::graph {

void TraversalScratch::begin(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.resize(n, 0);
    dist_.resize(n);
    // One slot of slack: the branchless top-down loop stores
    // queue[tail] unconditionally, so a stale edge check after the
    // final node is discovered touches (but never keeps) index n.
    frontier_.resize(n + 1);
    frontier_bits_.resize((n + 63) / 64, 0);
    unvisited_.resize(n);
  }
  if (++epoch_ == 0) {
    // The 8-bit epoch wrapped: one wholesale clear every 255
    // traversals, O(n)/255 amortized per call.
    std::fill(stamp_.begin(), stamp_.end(), std::uint8_t{0});
    epoch_ = 1;
  }
  visited_count_ = 0;
}

// ---- flat engine -----------------------------------------------------

std::size_t bfs_distances(const FlatView& view, NodeId src,
                          TraversalScratch& scratch) {
  scratch.begin(view.num_nodes());
  auto* dist = scratch.dist_.data();
  auto* stamp = scratch.stamp_.data();
  auto* queue = scratch.frontier_.data();
  const std::uint8_t epoch = scratch.epoch_;

  // Level-synchronous, direction-optimizing loop (Beamer's hybrid):
  // sparse frontiers expand top-down (scan the frontier's adjacency,
  // one byte-sized random load per edge); once the frontier holds more
  // than a quarter of the unvisited remainder -- the dense middle
  // levels of a small-diameter graph, where almost every top-down
  // check hits an already-visited node -- the level flips bottom-up:
  // sweep the still-unvisited ids and stop at the first neighbor on
  // the frontier. Frontier membership is a bitmap (n/8 bytes,
  // L1-resident; each level clears exactly the bits it set), and the
  // candidates come from a compacting pool of unvisited alive ids, so
  // consecutive bottom-up levels only touch the shrinking remainder.
  // Either way each level appends its nodes to the queue, so distances
  // are exact and visit order stays nondecreasing in depth.
  std::size_t tail = 0;
  stamp[src] = epoch;
  dist[src] = 0;
  queue[tail++] = src;
  std::size_t level_start = 0;
  std::uint32_t depth = 0;
  std::size_t unvisited = view.num_alive() - 1;
  auto* pool = scratch.unvisited_.data();
  std::size_t pool_size = 0;
  bool pool_ready = false;
  while (level_start < tail) {
    const std::size_t level_end = tail;
    const std::uint32_t child_depth = depth + 1;
    if (level_end - level_start > unvisited / 4) {
      auto* bits = scratch.frontier_bits_.data();
      for (std::size_t i = level_start; i < level_end; ++i) {
        const NodeId v = queue[i];
        bits[v >> 6] |= std::uint64_t{1} << (v & 63);
      }
      const auto probe = [&](NodeId u) {
        for (NodeId w : view.neighbors(u)) {
          if ((bits[w >> 6] >> (w & 63)) & 1) {
            stamp[u] = epoch;
            dist[u] = child_depth;
            queue[tail++] = u;
            return true;
          }
        }
        return false;
      };
      std::size_t kept = 0;
      if (!pool_ready) {
        // First bottom-up level: build the pool and probe in one sweep.
        if (view.num_alive() == view.num_nodes()) {
          // Fully-alive graph: scan the stamps eight at a time (SWAR
          // zero-byte trick on stamp ^ epoch) so the majority-visited
          // entries cost one word load instead of one mispredicted
          // branch each; only genuinely unvisited ids reach probe().
          // Visit order matches the per-id loop below exactly.
          const std::uint64_t bcast = 0x0101010101010101ull * epoch;
          const std::size_t nwords = view.num_nodes() / 8;
          for (std::size_t wi = 0; wi < nwords; ++wi) {
            std::uint64_t x;
            std::memcpy(&x, stamp + wi * 8, 8);
            x ^= bcast;  // zero byte <=> visited this epoch
            std::uint64_t m = (((x | 0x8080808080808080ull) -
                                0x0101010101010101ull) |
                               x) &
                              0x8080808080808080ull;
            while (m) {
              const unsigned byte =
                  static_cast<unsigned>(__builtin_ctzll(m)) >> 3;
              m &= m - 1;
              const NodeId u = static_cast<NodeId>(wi * 8 + byte);
              if (!probe(u)) pool[kept++] = u;
            }
          }
          for (NodeId u = static_cast<NodeId>(nwords * 8);
               u < view.num_nodes(); ++u) {
            if (stamp[u] != epoch && !probe(u)) pool[kept++] = u;
          }
        } else {
          for (NodeId u : view.alive_nodes()) {
            if (stamp[u] == epoch) continue;
            if (!probe(u)) pool[kept++] = u;
          }
        }
        pool_ready = true;
      } else {
        for (std::size_t i = 0; i < pool_size; ++i) {
          const NodeId u = pool[i];
          if (stamp[u] == epoch) continue;  // settled top-down since
          if (!probe(u)) pool[kept++] = u;
        }
      }
      pool_size = kept;
      for (std::size_t i = level_start; i < level_end; ++i) {
        const NodeId v = queue[i];
        bits[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
      }
    } else {
      // Branchless discovery: top-down only runs on levels where a
      // large fraction of edge checks discover (the dense wasteful
      // levels flip bottom-up), which makes the "seen before?" branch
      // maximally unpredictable. Unconditional idempotent stores + a
      // cmov'd dist and a `tail += fresh` append trade a few extra
      // uops for zero mispredicts; discovery order is unchanged.
      for (std::size_t i = level_start; i < level_end; ++i) {
        for (NodeId u : view.neighbors(queue[i])) {
          const bool fresh = stamp[u] != epoch;
          stamp[u] = epoch;
          dist[u] = fresh ? child_depth : dist[u];
          queue[tail] = u;
          tail += fresh;
        }
      }
    }
    unvisited -= tail - level_end;
    if (unvisited == 0) break;  // nothing left to discover
    level_start = level_end;
    ++depth;
  }
  scratch.visited_count_ = tail;
  return tail;
}

bool is_connected(const FlatView& view, TraversalScratch& scratch) {
  const std::size_t alive = view.num_alive();
  if (alive <= 1) return true;
  return bfs_distances(view, view.alive_nodes().front(), scratch) == alive;
}

std::size_t Components::largest() const {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

void connected_components(const FlatView& view, TraversalScratch& scratch,
                          Components& out) {
  const std::size_t n = view.num_nodes();
  out.label.assign(n, kInvalidComponent);
  out.sizes.clear();
  scratch.begin(n);  // only the frontier buffer is used here
  auto* queue = scratch.frontier_.data();
  for (NodeId root : view.alive_nodes()) {
    if (out.label[root] != kInvalidComponent) continue;
    const auto comp = static_cast<std::uint32_t>(out.sizes.size());
    std::size_t head = 0;
    std::size_t tail = 0;
    out.label[root] = comp;
    queue[tail++] = root;
    while (head < tail) {
      const NodeId v = queue[head++];
      for (NodeId u : view.neighbors(v)) {
        if (out.label[u] == kInvalidComponent) {
          out.label[u] = comp;
          queue[tail++] = u;
        }
      }
    }
    out.sizes.push_back(static_cast<std::uint32_t>(tail));
  }
}

std::uint32_t eccentricity(const FlatView& view, NodeId src,
                           TraversalScratch& scratch) {
  bfs_distances(view, src, scratch);
  // BFS discovery order is nondecreasing in distance: the last node
  // visited carries the eccentricity.
  return scratch.distance(scratch.visited().back());
}

// ---- legacy wrappers -------------------------------------------------

namespace {
/// One warm scratch per thread serves every legacy-signature call, so
/// the historical API rides the zero-alloc engine too.
TraversalScratch& local_scratch() {
  thread_local TraversalScratch scratch;
  return scratch;
}
}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  DASH_CHECK(g.alive(src));
  TraversalScratch& scratch = local_scratch();
  bfs_distances(g.flat_view(), src, scratch);
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  for (NodeId v : scratch.visited()) dist[v] = scratch.distance(v);
  return dist;
}

std::uint32_t bfs_distance(const Graph& g, NodeId src, NodeId dst) {
  DASH_CHECK(g.alive(src) && g.alive(dst));
  if (src == dst) return 0;
  // Point query: deliberately a plain top-down BFS (not the
  // direction-optimizing engine loop) because it returns the moment
  // dst is settled -- usually long before the dense middle levels
  // where bottom-up would start paying off.
  const FlatView& view = g.flat_view();
  TraversalScratch& scratch = local_scratch();
  scratch.begin(view.num_nodes());
  auto* dist = scratch.dist_.data();
  auto* stamp = scratch.stamp_.data();
  auto* queue = scratch.frontier_.data();
  const std::uint8_t epoch = scratch.epoch_;
  std::size_t head = 0;
  std::size_t tail = 0;
  stamp[src] = epoch;
  dist[src] = 0;
  queue[tail++] = src;
  while (head < tail) {
    const NodeId v = queue[head++];
    const std::uint32_t next = dist[v] + 1;
    for (NodeId u : view.neighbors(v)) {
      if (stamp[u] != epoch) {
        if (u == dst) {
          scratch.visited_count_ = 0;  // partial run: expose no state
          return next;
        }
        stamp[u] = epoch;
        dist[u] = next;
        queue[tail++] = u;
      }
    }
  }
  scratch.visited_count_ = 0;
  return kUnreachable;
}

bool is_connected(const Graph& g) {
  return is_connected(g.flat_view(), local_scratch());
}

Components connected_components(const Graph& g) {
  Components out;
  connected_components(g.flat_view(), local_scratch(), out);
  return out;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  DASH_CHECK(g.alive(src));
  return eccentricity(g.flat_view(), src, local_scratch());
}

std::uint32_t diameter(const Graph& g) {
  const FlatView& view = g.flat_view();
  if (view.num_alive() <= 1) return 0;
  TraversalScratch& scratch = local_scratch();
  if (!is_connected(view, scratch)) return kUnreachable;
  std::uint32_t diam = 0;
  for (NodeId v : view.alive_nodes()) {
    diam = std::max(diam, eccentricity(view, v, scratch));
  }
  return diam;
}

std::vector<std::uint32_t> all_pairs_distances(const Graph& g) {
  const std::size_t n = g.num_nodes();
  const FlatView& view = g.flat_view();
  TraversalScratch& scratch = local_scratch();
  std::vector<std::uint32_t> mat(n * n, kUnreachable);
  for (NodeId v : view.alive_nodes()) {
    bfs_distances(view, v, scratch);
    auto* row = mat.data() + static_cast<std::size_t>(v) * n;
    for (NodeId u : scratch.visited()) row[u] = scratch.distance(u);
  }
  return mat;
}

}  // namespace dash::graph
