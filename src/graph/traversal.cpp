#include "graph/traversal.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace dash::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  DASH_CHECK(g.alive(src));
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier;
  dist[src] = 0;
  frontier.push_back(src);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    const std::uint32_t next = dist[v] + 1;
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = next;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

std::uint32_t bfs_distance(const Graph& g, NodeId src, NodeId dst) {
  DASH_CHECK(g.alive(src) && g.alive(dst));
  if (src == dst) return 0;
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier;
  dist[src] = 0;
  frontier.push_back(src);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    const std::uint32_t next = dist[v] + 1;
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        if (u == dst) return next;
        dist[u] = next;
        frontier.push_back(u);
      }
    }
  }
  return kUnreachable;
}

bool is_connected(const Graph& g) {
  const auto alive = g.alive_nodes();
  if (alive.size() <= 1) return true;
  const auto dist = bfs_distances(g, alive.front());
  return std::all_of(alive.begin(), alive.end(), [&](NodeId v) {
    return dist[v] != kUnreachable;
  });
}

std::size_t Components::largest() const {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), kInvalidComponent);
  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (!g.alive(root) || out.label[root] != kInvalidComponent) continue;
    const auto comp = static_cast<std::uint32_t>(out.sizes.size());
    out.sizes.push_back(0);
    out.label[root] = comp;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      ++out.sizes[comp];
      for (NodeId u : g.neighbors(v)) {
        if (out.label[u] == kInvalidComponent) {
          out.label[u] = comp;
          frontier.push_back(u);
        }
      }
    }
  }
  return out;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.alive(v) && dist[v] != kUnreachable) ecc = std::max(ecc, dist[v]);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  const auto alive = g.alive_nodes();
  if (alive.size() <= 1) return 0;
  if (!is_connected(g)) return kUnreachable;
  std::uint32_t diam = 0;
  for (NodeId v : alive) diam = std::max(diam, eccentricity(g, v));
  return diam;
}

std::vector<std::uint32_t> all_pairs_distances(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> mat(n * n, kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    if (!g.alive(v)) continue;
    const auto dist = bfs_distances(g, v);
    std::copy(dist.begin(), dist.end(), mat.begin() + v * n);
  }
  return mat;
}

}  // namespace dash::graph
