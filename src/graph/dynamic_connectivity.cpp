#include "graph/dynamic_connectivity.h"

#include <span>

#include "util/check.h"

namespace dash::graph {

DynamicConnectivity::DynamicConnectivity(const Graph& g)
    : g_(&g),
      uf_(g.num_nodes()),
      alive_size_(g.num_nodes(), 0),
      is_seed_(g.num_nodes(), 0),
      visit_epoch_(g.num_nodes(), 0),
      root_epoch_(g.num_nodes(), 0) {
  const NodeId n = static_cast<NodeId>(g.num_nodes());
  for (NodeId v = 0; v < n; ++v) {
    if (!g.alive(v)) continue;
    for (NodeId u : g.neighbors(v)) {
      if (u > v) uf_.unite(v, u);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (g.alive(v)) ++alive_size_[uf_.find(v)];
  }
  for (NodeId v = 0; v < n; ++v) {
    // Sets built from alive nodes only, so every populated root is its
    // own alive member.
    if (g.alive(v) && uf_.find(v) == v) {
      hist_add(alive_size_[v]);
      ++components_;
    }
  }
}

// ---- size histogram -----------------------------------------------------

void DynamicConnectivity::hist_add(std::size_t s) {
  if (s >= size_count_.size()) size_count_.resize(s + 1, 0);
  ++size_count_[s];
  if (s > largest_) largest_ = s;
}

void DynamicConnectivity::hist_remove(std::size_t s) {
  DASH_DCHECK(s < size_count_.size() && size_count_[s] > 0);
  --size_count_[s];
  while (largest_ > 0 && size_count_[largest_] == 0) --largest_;
}

// ---- mutation stream ------------------------------------------------------

void DynamicConnectivity::node_added(NodeId v) {
  DASH_CHECK_MSG(v == uf_.size(),
                 "node_added out of sync with the graph's id space");
  uf_.add();
  alive_size_.push_back(1);
  is_seed_.push_back(0);
  visit_epoch_.push_back(0);
  root_epoch_.push_back(0);
  ++components_;
  hist_add(1);
}

void DynamicConnectivity::edge_added(NodeId a, NodeId b) {
  const UnionFind::UniteReport r = uf_.unite_report(a, b);
  if (!r.merged) return;
  const std::size_t sa = alive_size_[r.root];
  const std::size_t sb = alive_size_[r.absorbed];
  hist_remove(sa);
  hist_remove(sb);
  hist_add(sa + sb);
  alive_size_[r.root] = static_cast<std::uint32_t>(sa + sb);
  --components_;
}

void DynamicConnectivity::edge_removed(NodeId a, NodeId b) {
  // The union-find cannot split; seed both sides so the next query's
  // re-scan resolves whether the component actually came apart.
  seed(a);
  seed(b);
}

void DynamicConnectivity::drop_alive_member(NodeId v) {
  const NodeId r = uf_.find(v);
  const std::size_t s = alive_size_[r];
  DASH_CHECK_MSG(s > 0, "deleting from an already-empty component");
  hist_remove(s);
  alive_size_[r] = static_cast<std::uint32_t>(s - 1);
  if (s == 1) {
    --components_;
  } else {
    hist_add(s - 1);
  }
}

void DynamicConnectivity::node_removed(NodeId v,
                                       const std::vector<NodeId>& survivors,
                                       bool may_split) {
  drop_alive_member(v);
  if (may_split && survivors.size() >= 2) {
    for (NodeId s : survivors) seed(s);
  } else if (is_seed_[v] && !survivors.empty()) {
    // v backed a pending re-scan; its piece stays whole (certified, or
    // a single survivor), so one survivor inherits the seed duty.
    seed(survivors.front());
  }
  is_seed_[v] = 0;  // dead seeds are skipped at flush anyway
}

void DynamicConnectivity::batch_removed(
    const std::vector<NodeId>& members,
    const std::vector<NodeId>& survivors, bool may_split) {
  bool member_was_seed = false;
  for (NodeId v : members) {
    drop_alive_member(v);
    member_was_seed |= is_seed_[v] != 0;
  }
  if (may_split && survivors.size() >= 2) {
    for (NodeId s : survivors) seed(s);
  } else if (member_was_seed && !survivors.empty()) {
    // A certified batch keeps its piece whole, so one survivor can
    // inherit the seed duty the dead members were carrying.
    seed(survivors.front());
  }
  for (NodeId v : members) is_seed_[v] = 0;
}

// ---- queries ----------------------------------------------------------------

bool DynamicConnectivity::connected() {
  flush();
  return g_->num_alive() <= 1 || components_ <= 1;
}

std::size_t DynamicConnectivity::component_count() {
  flush();
  return components_;
}

std::size_t DynamicConnectivity::largest_component() {
  flush();
  return largest_;
}

bool DynamicConnectivity::same_component(NodeId a, NodeId b) {
  DASH_CHECK_MSG(g_->alive(a) && g_->alive(b),
                 "same_component needs alive nodes");
  flush();
  return uf_.connected(a, b);
}

std::size_t DynamicConnectivity::component_size(NodeId v) {
  DASH_CHECK_MSG(g_->alive(v), "component_size needs an alive node");
  flush();
  return alive_size_[uf_.find(v)];
}

// ---- lazy re-scan ----------------------------------------------------------

void DynamicConnectivity::seed(NodeId v) {
  if (is_seed_[v]) return;
  is_seed_[v] = 1;
  seeds_.push_back(v);
}

void DynamicConnectivity::flush() {
  if (seeds_.empty()) return;
  ++epoch_;

  // One BFS group per piece, discovered from the alive seeds. The
  // invariant in the header guarantees the groups cover every alive
  // member of every set the union-find may be holding too coarse.
  // Groups live packed in scan_nodes_ (scan_offsets_ delimits them) --
  // persistent flat buffers, so the re-scan allocates nothing once
  // warm, matching the zero-alloc traversal engine.
  scan_nodes_.clear();
  scan_offsets_.clear();
  scan_offsets_.push_back(0);
  for (NodeId s : seeds_) {
    is_seed_[s] = 0;
    if (!g_->alive(s) || visit_epoch_[s] == epoch_) continue;
    visit_epoch_[s] = epoch_;
    scan_nodes_.push_back(s);
    for (std::size_t i = scan_offsets_.back(); i < scan_nodes_.size(); ++i) {
      for (NodeId u : g_->neighbors(scan_nodes_[i])) {
        if (visit_epoch_[u] != epoch_) {
          visit_epoch_[u] = epoch_;
          scan_nodes_.push_back(u);
        }
      }
    }
    scan_offsets_.push_back(scan_nodes_.size());
  }
  seeds_.clear();
  const std::size_t groups = scan_offsets_.size() - 1;
  auto group = [this](std::size_t i) {
    return std::span<const NodeId>(scan_nodes_.data() + scan_offsets_[i],
                                   scan_offsets_[i + 1] - scan_offsets_[i]);
  };

  // Dissolve the affected sets' books first (roots must be read before
  // any reroot rewrites them), then install the exact new partition.
  for (std::size_t i = 0; i < groups; ++i) {
    for (NodeId u : group(i)) {
      const NodeId r = uf_.find(u);
      if (root_epoch_[r] == epoch_) continue;
      root_epoch_[r] = epoch_;
      hist_remove(alive_size_[r]);
      alive_size_[r] = 0;
      --components_;
    }
  }
  for (std::size_t i = 0; i < groups; ++i) {
    const std::span<const NodeId> members = group(i);
    uf_.reroot(members);
    alive_size_[members.front()] =
        static_cast<std::uint32_t>(members.size());
    hist_add(members.size());
    ++components_;
  }

  ++rebuilds_;
  nodes_rescanned_ += scan_nodes_.size();
}

}  // namespace dash::graph
