#include "graph/flat_view.h"

#include <algorithm>

#include "graph/graph.h"

namespace dash::graph {

void FlatView::rebuild(const Graph& g) {
  const std::size_t n = g.num_nodes();
  offsets_.assign(n + 1, 0);
  alive_.clear();
  alive_.reserve(g.num_alive());
  for (NodeId v = 0; v < n; ++v) {
    if (!g.alive(v)) continue;
    alive_.push_back(v);
    offsets_[v + 1] = static_cast<std::uint32_t>(g.degree(v));
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  edges_.resize(offsets_[n]);
  for (NodeId v : alive_) {
    const auto& nbrs = g.neighbors(v);
    std::copy(nbrs.begin(), nbrs.end(), edges_.begin() + offsets_[v]);
  }
  generation_ = g.generation();
  valid_ = true;
}

}  // namespace dash::graph
