#include "graph/flat_view.h"

#include <algorithm>

#include "graph/graph.h"

namespace dash::graph {

void FlatView::rebuild(const Graph& g) {
  const std::size_t n = g.num_nodes();
  offsets_ = g.offset_;
  degrees_ = g.degree_;
  edges_ = g.slab_;
  edge_entries_ = 2 * g.num_edges();
  alive_.clear();
  alive_.reserve(g.num_alive());
  for (NodeId v = 0; v < n; ++v) {
    if (g.alive(v)) alive_.push_back(v);
  }
  generation_ = g.generation();
  graph_uid_ = g.uid();
  log_seq_ = g.touched_end();
  valid_ = true;
  ++full_rebuilds_;
}

void FlatView::refresh(const Graph& g) {
  if (!try_patch(g)) rebuild(g);
}

bool FlatView::try_patch(const Graph& g) {
  // The patch is sound only against the same graph instance, and only
  // while the log still retains every entry since our last sync.
  if (!valid_ || graph_uid_ != g.uid()) return false;
  if (log_seq_ < g.touched_begin() || log_seq_ > g.touched_end()) {
    return false;
  }
  if (log_seq_ == g.touched_end()) {  // nothing happened since the sync
    generation_ = g.generation();
    return true;
  }

  const std::size_t n = g.num_nodes();
  const std::vector<NodeId>& log = g.touched_log();
  const std::size_t window_begin =
      static_cast<std::size_t>(log_seq_ - g.touched_begin());

  // Dedupe the window with epoch stamps; bail to the full rebuild once
  // the distinct set crosses the patch threshold.
  const std::size_t limit = std::max<std::size_t>(
      64, static_cast<std::size_t>(kPatchFractionLimit *
                                   static_cast<double>(n)));
  if (stamp_.size() < n) stamp_.resize(n, 0);
  ++stamp_epoch_;
  touched_scratch_.clear();
  for (std::size_t i = window_begin; i < log.size(); ++i) {
    const NodeId v = log[i];
    if (stamp_[v] == stamp_epoch_) continue;
    stamp_[v] = stamp_epoch_;
    touched_scratch_.push_back(v);
    if (touched_scratch_.size() > limit) return false;
  }

  // Mirror growth (node ids and the slab only ever extend; resize keeps
  // every untouched prefix byte in place).
  const std::size_t old_n = degrees_.size();
  if (n > old_n) {
    offsets_.resize(n, 0);
    degrees_.resize(n, 0);
  }
  if (edges_.size() < g.slab_.size()) edges_.resize(g.slab_.size());

  died_scratch_.clear();
  born_scratch_.clear();
  for (const NodeId v : touched_scratch_) {
    const bool was_alive =
        v < old_n &&
        std::binary_search(alive_.begin(), alive_.end(), v);
    const bool now_alive = g.alive(v);
    if (was_alive != now_alive) {
      (now_alive ? born_scratch_ : died_scratch_).push_back(v);
    }
    const std::uint32_t old_deg = degrees_[v];
    const std::uint32_t new_deg = g.degree_[v];
    const std::uint32_t off = g.offset_[v];
    offsets_[v] = off;
    degrees_[v] = new_deg;
    std::copy(g.slab_.begin() + off, g.slab_.begin() + off + new_deg,
              edges_.begin() + off);
    edge_entries_ += new_deg;
    edge_entries_ -= old_deg;
  }

  if (!died_scratch_.empty() || !born_scratch_.empty()) {
    std::sort(died_scratch_.begin(), died_scratch_.end());
    std::sort(born_scratch_.begin(), born_scratch_.end());
    alive_scratch_.clear();
    alive_scratch_.reserve(g.num_alive());
    std::size_t di = 0, bi = 0;
    for (const NodeId v : alive_) {
      while (bi < born_scratch_.size() && born_scratch_[bi] < v) {
        alive_scratch_.push_back(born_scratch_[bi++]);
      }
      if (di < died_scratch_.size() && died_scratch_[di] == v) {
        ++di;
        continue;
      }
      alive_scratch_.push_back(v);
    }
    while (bi < born_scratch_.size()) {
      alive_scratch_.push_back(born_scratch_[bi++]);
    }
    alive_.swap(alive_scratch_);
  }

  generation_ = g.generation();
  log_seq_ = g.touched_end();
  ++patched_refreshes_;
  vertices_patched_ += touched_scratch_.size();
  return true;
}

}  // namespace dash::graph
