// union_find.h -- disjoint-set forest with union by size and path
// compression. Used as the ground-truth component oracle that the
// ID-propagation mechanism of DASH is validated against, and by the
// connectivity invariant checker.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace dash::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0);

  void reset(std::size_t n);

  /// Representative of v's set (with path compression).
  NodeId find(NodeId v);

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(NodeId a, NodeId b);

  bool connected(NodeId a, NodeId b) { return find(a) == find(b); }

  /// Size of the set containing v.
  std::size_t set_size(NodeId v);

  /// Number of disjoint sets over all n elements.
  std::size_t num_sets() const { return sets_; }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_ = 0;
};

}  // namespace dash::graph
