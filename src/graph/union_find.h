// union_find.h -- disjoint-set forest with union by size and path
// compression. Used as the ground-truth component oracle that the
// ID-propagation mechanism of DASH is validated against, by the
// connectivity invariant checker, and as the insert-only half of
// graph::DynamicConnectivity (which also needs the add()/unite_report()/
// reroot() extensions below for its rebuild-on-delete path).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace dash::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0);

  void reset(std::size_t n);

  /// Representative of v's set (with path compression).
  NodeId find(NodeId v);

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(NodeId a, NodeId b);

  /// Result of one unite_report() call: which root survived and which
  /// was absorbed, so callers that key per-set data on roots can merge
  /// their own books. When merged is false both fields name the common
  /// root the elements already shared.
  struct UniteReport {
    NodeId root = kInvalidNode;
    NodeId absorbed = kInvalidNode;
    bool merged = false;
  };

  /// unite() that reports the surviving and absorbed roots.
  UniteReport unite_report(NodeId a, NodeId b);

  bool connected(NodeId a, NodeId b) { return find(a) == find(b); }

  /// Size of the set containing v.
  std::size_t set_size(NodeId v);

  /// Number of disjoint sets over all n elements.
  std::size_t num_sets() const { return sets_; }

  std::size_t size() const { return parent_.size(); }

  /// Append one fresh singleton element; returns its id. Grows the
  /// element space (organic node arrivals).
  NodeId add();

  /// Rebuild surgery for DynamicConnectivity's delete path: carve
  /// `members` (non-empty) out of their current sets and make them one
  /// fresh set rooted at members[0]. Elements outside `members` that
  /// shared a set keep their old parent chains, so the caller must
  /// reroot every element it still queries from the dissolved sets
  /// (DynamicConnectivity reroots every alive member and never queries
  /// dead ids again). After this call num_sets()/set_size() are only
  /// meaningful for sets the surgery never touched -- callers keep
  /// their own component books.
  void reroot(std::span<const NodeId> members);

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_ = 0;
};

}  // namespace dash::graph
