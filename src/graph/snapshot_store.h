// snapshot_store.h -- epoch-published immutable CSR snapshots for
// concurrent serving: the mutation thread publishes a frozen FlatView
// (plus its component labelling) at epoch N while the live Graph keeps
// mutating toward N+1, and any number of reader threads answer
// connectivity/distance queries from a *pinned* epoch without taking a
// lock on the read path.
//
// Reclamation is epoch-based: each reader owns a cheap per-thread slot
// holding the epoch it has pinned (or kNoEpoch). publish() retires the
// previous snapshot and frees every retired snapshot whose epoch is
// below the minimum pinned epoch -- so a snapshot's buffers live
// exactly as long as some reader can still see it, and freed snapshots
// are recycled (their FlatView/Components buffers are reused by later
// publishes, the same buffer-reuse discipline FlatView::rebuild has).
//
// Thread contract:
//   * publish() is mutation-thread only (one writer).
//   * make_reader() may be called from any thread (brief registration
//     lock); each SnapshotStore::Reader then belongs to one thread.
//   * Reader::pin()/unpin are lock-free: one seq_cst store + loads.
//   * Readers and Pins must not outlive the store.
//
// The pin protocol closes the publish/pin race without dereferencing
// unpinned memory: a reader first advertises the epoch it read, then
// re-loads the current snapshot and retries unless the snapshot it got
// carries exactly that epoch. The writer orders its publish as "store
// snapshot pointer, then advance the epoch counter", so an advertised
// epoch always protects the snapshot that carries it (see the proof
// sketch in snapshot_store.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/flat_view.h"
#include "graph/traversal.h"

namespace dash::graph {

class Graph;
class SnapshotStore;

/// One published epoch: a frozen CSR view of the alive subgraph plus
/// its component labelling (computed once at publish time, so
/// connected()/largest_component() are O(1) per query). Immutable after
/// publication; safe to read from any number of threads while pinned.
class Snapshot {
 public:
  std::uint64_t epoch() const { return epoch_; }
  const FlatView& view() const { return view_; }
  const Components& components() const { return comps_; }

  std::size_t num_alive() const { return view_.num_alive(); }
  std::size_t component_count() const { return comps_.count(); }
  std::size_t largest_component() const { return comps_.largest(); }

  /// True when v is alive in this snapshot. Binary search over the
  /// ascending alive list -- deliberately independent of the component
  /// labels, so label-based and BFS-based answers cross-check each
  /// other (the serve bench's torn-read detector).
  bool alive(NodeId v) const;

  /// Same component in this snapshot? O(1) via the labels; false when
  /// either endpoint is dead or out of the snapshot's id range.
  bool connected(NodeId u, NodeId v) const {
    if (u >= comps_.label.size() || v >= comps_.label.size()) return false;
    const std::uint32_t lu = comps_.label[u];
    return lu != kInvalidComponent && lu == comps_.label[v];
  }

  /// Hop distance via a full BFS on the snapshot (caller-owned
  /// scratch); nullopt when either endpoint is dead/out-of-range or
  /// the two are disconnected. Answers purely from the CSR arrays --
  /// never from the labels -- so it doubles as the verify side of the
  /// connected() cross-check.
  std::optional<std::uint32_t> distance(NodeId u, NodeId v,
                                        TraversalScratch& scratch) const;

 private:
  friend class SnapshotStore;
  std::uint64_t epoch_ = 0;
  FlatView view_;
  Components comps_;
};

/// Publishes snapshots and reclaims retired ones once unpinned.
class SnapshotStore {
 public:
  /// A reader slot never pins anything: kNoEpoch orders above every
  /// real epoch, so idle slots are invisible to reclamation.
  static constexpr std::uint64_t kNoEpoch =
      std::numeric_limits<std::uint64_t>::max();

  SnapshotStore() = default;
  ~SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  class Pin;
  class Reader;

  /// Build and publish a snapshot of g's current alive subgraph as the
  /// next epoch, retire the previous snapshot, and free every retired
  /// snapshot no reader pins. Mutation thread only. Returns the new
  /// epoch (first publish returns 1).
  std::uint64_t publish(const Graph& g);

  /// Epoch of the most recent publish; 0 before the first.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Register (or recycle) a reader slot. Any thread; brief lock. The
  /// returned Reader must be used by one thread at a time and must not
  /// outlive the store.
  Reader make_reader();

  // ---- diagnostics (test hooks; take the registration lock) ----------

  /// Snapshots currently allocated and visible to some reader: the
  /// published one plus retired-but-still-pinned ones.
  std::size_t live_snapshots() const;
  /// Retired snapshots whose memory has not been reclaimed yet.
  std::size_t retired_pending() const;
  /// Registered reader slots (including recycled-but-idle ones).
  std::size_t reader_slots() const;

  // ---- publish telemetry (mutation thread only) ----------------------

  /// Publishes that paid a full O(n + slab) CSR rebuild (first use of a
  /// snapshot buffer, or churn past FlatView::kPatchFractionLimit).
  std::size_t full_publishes() const { return full_publishes_; }
  /// Publishes that delta-patched a recycled snapshot's CSR forward.
  std::size_t patched_publishes() const { return patched_publishes_; }
  /// Distinct vertices re-mirrored across all patched publishes.
  std::size_t touched_vertices() const { return touched_vertices_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> pinned{kNoEpoch};
    std::atomic<bool> in_use{false};
  };

  /// Free every retired snapshot with epoch < min pinned epoch; freed
  /// snapshots park in free_ for buffer reuse. Called under mu_.
  void reclaim_locked();

  std::atomic<const Snapshot*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};

  /// Writer-thread state: ownership of the currently published
  /// snapshot and the scratch used for publish-time labelling.
  std::unique_ptr<Snapshot> current_owned_;
  TraversalScratch scratch_;
  std::size_t full_publishes_ = 0;
  std::size_t patched_publishes_ = 0;
  std::size_t touched_vertices_ = 0;

  /// Guards slots_/retired_/free_ -- registration and reclamation only,
  /// never the read path.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::unique_ptr<Snapshot>> retired_;
  std::vector<std::unique_ptr<Snapshot>> free_;
};

/// RAII pin: while alive, the pinned snapshot (and every snapshot of a
/// later epoch) cannot be reclaimed. Cheap to construct and destroy --
/// the serve read path takes one per query batch.
class SnapshotStore::Pin {
 public:
  Pin(Pin&& other) noexcept
      : slot_(other.slot_), snap_(other.snap_) {
    other.slot_ = nullptr;
    other.snap_ = nullptr;
  }
  Pin& operator=(Pin&& other) noexcept;
  Pin(const Pin&) = delete;
  Pin& operator=(const Pin&) = delete;
  ~Pin() { release(); }

  const Snapshot& operator*() const { return *snap_; }
  const Snapshot* operator->() const { return snap_; }
  const Snapshot& snapshot() const { return *snap_; }

 private:
  friend class SnapshotStore::Reader;
  Pin(Slot* slot, const Snapshot* snap) : slot_(slot), snap_(snap) {}
  void release();

  Slot* slot_ = nullptr;
  const Snapshot* snap_ = nullptr;
};

/// One thread's handle into the store. Movable; not copyable. At most
/// one Pin may be outstanding per Reader.
class SnapshotStore::Reader {
 public:
  Reader(Reader&& other) noexcept
      : store_(other.store_), slot_(other.slot_) {
    other.store_ = nullptr;
    other.slot_ = nullptr;
  }
  Reader& operator=(Reader&& other) noexcept;
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader();

  /// Pin the latest published epoch. Lock-free; retries only while a
  /// publish lands concurrently. The store must have published at
  /// least once.
  Pin pin();

 private:
  friend class SnapshotStore;
  Reader(SnapshotStore* store, Slot* slot) : store_(store), slot_(slot) {}
  void release();

  SnapshotStore* store_ = nullptr;
  Slot* slot_ = nullptr;
};

}  // namespace dash::graph
