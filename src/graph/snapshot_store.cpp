#include "graph/snapshot_store.h"

#include <algorithm>

#include "graph/graph.h"
#include "util/check.h"

namespace dash::graph {

// Why the pin protocol is safe (single writer W, any readers):
//
//   W: ... build snapshot S_e ... current_ = &S_e (seq_cst);
//      epoch_ = e (release); retire S_{e-1}; scan pins (seq_cst loads);
//      free retired S_f iff f < min advertised pin
//   R: e = epoch_ (acquire); slot = e (seq_cst);
//      S = current_ (seq_cst); accept iff S->epoch == e, else retry
//
// (1) R only dereferences snapshots of epoch >= e: epoch_ == e is
//     store-released after current_ points at S_e, so R's later
//     current_ load (same variable, coherence) returns S_e or newer.
// (2) A scan that frees S_f either sees R's slot value e (then f < e
//     and S_f is not what R holds, by (1)) or is seq_cst-ordered
//     before R's slot store; in that case W's current_ store that
//     retired S_f is also ordered before R's current_ load, so R's
//     load returns a snapshot newer than S_f -- again not S_f.
// Either way no reader ever touches freed memory, and a reader that
// loses the race against a concurrent publish simply retries (its
// validation "S->epoch == e" fails because S is newer).

bool Snapshot::alive(NodeId v) const {
  const std::vector<NodeId>& ids = view_.alive_nodes();
  return std::binary_search(ids.begin(), ids.end(), v);
}

std::optional<std::uint32_t> Snapshot::distance(
    NodeId u, NodeId v, TraversalScratch& scratch) const {
  if (!alive(u) || !alive(v)) return std::nullopt;
  if (u == v) return 0;
  bfs_distances(view_, u, scratch);
  const std::uint32_t d = scratch.distance(v);
  if (d == kUnreachable) return std::nullopt;
  return d;
}

SnapshotStore::~SnapshotStore() = default;

std::uint64_t SnapshotStore::publish(const Graph& g) {
  std::unique_ptr<Snapshot> next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      next = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (!next) next.reset(new Snapshot());

  const std::uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
  next->epoch_ = e;
  // Recycled snapshot buffers still carry the CSR of the epoch they last
  // published, so refresh() patches forward from that state instead of
  // paying a full O(n + slab) rebuild every publish.
  const std::size_t fulls_before = next->view_.full_rebuilds();
  const std::size_t touched_before = next->view_.vertices_patched();
  next->view_.refresh(g);
  if (next->view_.full_rebuilds() != fulls_before) {
    ++full_publishes_;
  } else {
    ++patched_publishes_;
    touched_vertices_ += next->view_.vertices_patched() - touched_before;
  }
  connected_components(next->view_, scratch_, next->comps_);

  // Publication order matters: snapshot pointer first, epoch second
  // (see the proof sketch above).
  current_.store(next.get(), std::memory_order_seq_cst);
  epoch_.store(e, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_owned_) retired_.push_back(std::move(current_owned_));
    current_owned_ = std::move(next);
    reclaim_locked();
  }
  return e;
}

void SnapshotStore::reclaim_locked() {
  std::uint64_t min_pinned = kNoEpoch;
  for (const auto& slot : slots_) {
    min_pinned =
        std::min(min_pinned, slot->pinned.load(std::memory_order_seq_cst));
  }
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if ((*it)->epoch_ < min_pinned) {
      free_.push_back(std::move(*it));
    } else {
      *keep++ = std::move(*it);
    }
  }
  retired_.erase(keep, retired_.end());
}

SnapshotStore::Reader SnapshotStore::make_reader() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : slots_) {
    if (!slot->in_use.load(std::memory_order_relaxed)) {
      slot->in_use.store(true, std::memory_order_relaxed);
      slot->pinned.store(kNoEpoch, std::memory_order_relaxed);
      return Reader(this, slot.get());
    }
  }
  slots_.push_back(std::make_unique<Slot>());
  slots_.back()->in_use.store(true, std::memory_order_relaxed);
  return Reader(this, slots_.back().get());
}

std::size_t SnapshotStore::live_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (current_owned_ ? 1 : 0) + retired_.size();
}

std::size_t SnapshotStore::retired_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

std::size_t SnapshotStore::reader_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

// ---- Pin / Reader ----------------------------------------------------------

void SnapshotStore::Pin::release() {
  if (slot_ != nullptr) {
    slot_->pinned.store(SnapshotStore::kNoEpoch, std::memory_order_release);
    slot_ = nullptr;
    snap_ = nullptr;
  }
}

SnapshotStore::Pin& SnapshotStore::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    release();
    slot_ = other.slot_;
    snap_ = other.snap_;
    other.slot_ = nullptr;
    other.snap_ = nullptr;
  }
  return *this;
}

SnapshotStore::Pin SnapshotStore::Reader::pin() {
  DASH_CHECK_MSG(slot_ != nullptr, "pin() on a moved-from Reader");
  DASH_CHECK_MSG(slot_->pinned.load(std::memory_order_relaxed) == kNoEpoch,
                 "one Pin at a time per Reader");
  for (;;) {
    const std::uint64_t e = store_->epoch_.load(std::memory_order_acquire);
    DASH_CHECK_MSG(e != 0, "pin() before the first publish()");
    slot_->pinned.store(e, std::memory_order_seq_cst);
    const Snapshot* snap = store_->current_.load(std::memory_order_seq_cst);
    if (snap != nullptr && snap->epoch() == e) return Pin(slot_, snap);
    // A publish landed between the epoch load and the pin: advertise
    // the fresh epoch instead. (snap is newer than e here, so it is
    // protected by the very pin we advertised -- dereferencing its
    // epoch above was safe.)
    slot_->pinned.store(kNoEpoch, std::memory_order_seq_cst);
  }
}

void SnapshotStore::Reader::release() {
  if (slot_ != nullptr) {
    slot_->pinned.store(kNoEpoch, std::memory_order_release);
    slot_->in_use.store(false, std::memory_order_release);
    slot_ = nullptr;
    store_ = nullptr;
  }
}

SnapshotStore::Reader& SnapshotStore::Reader::operator=(
    Reader&& other) noexcept {
  if (this != &other) {
    release();
    store_ = other.store_;
    slot_ = other.slot_;
    other.store_ = nullptr;
    other.slot_ = nullptr;
  }
  return *this;
}

SnapshotStore::Reader::~Reader() { release(); }

}  // namespace dash::graph
