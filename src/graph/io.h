// io.h -- plain edge-list serialization ("n\nu v\n..." with '#' comments)
// so experiments can be checkpointed and external graphs imported.
#pragma once

#include <istream>
#include <ostream>

#include "graph/graph.h"

namespace dash::graph {

/// Writes "<num_nodes>" then one "u v" line per alive edge (u < v).
/// Dead nodes are recorded as "! v" lines so a round-trip preserves the
/// alive set exactly.
void write_edge_list(std::ostream& out, const Graph& g);

/// Inverse of write_edge_list. Throws std::runtime_error on malformed
/// input (negative ids, out-of-range endpoints, missing header).
Graph read_edge_list(std::istream& in);

}  // namespace dash::graph
