#include "graph/metrics.h"

namespace dash::graph {

std::size_t max_degree(const Graph& g) {
  std::size_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.alive(v)) best = std::max(best, g.degree(v));
  }
  return best;
}

NodeId argmax_degree(const Graph& g) {
  NodeId best = kInvalidNode;
  std::size_t best_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (best == kInvalidNode || g.degree(v) > best_deg) {
      best = v;
      best_deg = g.degree(v);
    }
  }
  return best;
}

double average_degree(const Graph& g) {
  if (g.num_alive() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_alive());
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    const std::size_t d = g.degree(v);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace dash::graph
