#include "graph/non_index.h"

#include <algorithm>

#include "util/check.h"

namespace dash::graph {

namespace {
bool sorted_contains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}
}  // namespace

NonIndex::NonIndex(const Graph& g)
    : direct_(g.num_nodes()), two_hop_count_(g.num_nodes()) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    const auto nbrs = g.neighbors(v);
    direct_[v].assign(nbrs.begin(), nbrs.end());
  }
  // Count 2-hop paths x - y - z for every middle node y.
  for (NodeId y = 0; y < g.num_nodes(); ++y) {
    if (!g.alive(y)) continue;
    const auto& nbrs = direct_[y];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        if (i != j) add_two_hop(nbrs[i], nbrs[j]);
      }
    }
  }
}

void NonIndex::add_two_hop(NodeId x, NodeId z) { ++two_hop_count_[x][z]; }

void NonIndex::remove_two_hop(NodeId x, NodeId z) {
  auto it = two_hop_count_[x].find(z);
  DASH_CHECK_MSG(it != two_hop_count_[x].end() && it->second > 0,
                 "NoN underflow: removing unknown 2-hop entry");
  if (--it->second == 0) two_hop_count_[x].erase(it);
}

void NonIndex::on_add_edge(const Graph& g, NodeId a, NodeId b) {
  DASH_CHECK_MSG(g.has_edge(a, b), "notify after the edge is added");
  DASH_CHECK(!sorted_contains(direct_[a], b));

  // Protocol cost: a and b exchange neighbor lists (1 message each) and
  // each announces the new adjacency to its other neighbors.
  messages_ += 2;
  messages_ += direct_[a].size() + direct_[b].size();

  // New 2-hop paths through a: b - a - y for y in N(a); through b:
  // a - b - y for y in N(b). (Uses the pre-insertion lists.)
  for (NodeId y : direct_[a]) {
    add_two_hop(b, y);
    add_two_hop(y, b);
  }
  for (NodeId y : direct_[b]) {
    add_two_hop(a, y);
    add_two_hop(y, a);
  }
  direct_[a].insert(
      std::lower_bound(direct_[a].begin(), direct_[a].end(), b), b);
  direct_[b].insert(
      std::lower_bound(direct_[b].begin(), direct_[b].end(), a), a);
}

void NonIndex::on_delete_node(const Graph& g, NodeId v,
                              const std::vector<NodeId>& former_neighbors) {
  DASH_CHECK(!g.alive(v));
  // Every ex-neighbor u detects the failure and tells its own
  // neighbors (minus v) that v is unreachable through it.
  for (NodeId u : former_neighbors) {
    messages_ += direct_[u].size() - 1;
  }

  // Remove 2-hop paths with v as the middle: x - v - z.
  for (NodeId x : former_neighbors) {
    for (NodeId z : former_neighbors) {
      if (x != z) remove_two_hop(x, z);
    }
  }
  // Remove 2-hop paths with v as an endpoint: v - u - y and y - u - v.
  for (NodeId u : former_neighbors) {
    for (NodeId y : direct_[u]) {
      if (y == v) continue;
      remove_two_hop(y, v);
      remove_two_hop(v, y);
    }
  }
  // Drop direct adjacency both ways.
  for (NodeId u : former_neighbors) {
    auto& adj = direct_[u];
    adj.erase(std::lower_bound(adj.begin(), adj.end(), v));
  }
  direct_[v].clear();
  two_hop_count_[v].clear();
}

bool NonIndex::knows(NodeId x, NodeId z) const {
  if (x == z) return true;
  if (sorted_contains(direct_[x], z)) return true;
  auto it = two_hop_count_[x].find(z);
  return it != two_hop_count_[x].end() && it->second > 0;
}

std::size_t NonIndex::knowledge_size(NodeId x) const {
  std::size_t known = direct_[x].size();
  for (const auto& [z, count] : two_hop_count_[x]) {
    if (count > 0 && !sorted_contains(direct_[x], z) && z != x) ++known;
  }
  return known;
}

bool NonIndex::consistent_with(const Graph& g) const {
  NonIndex fresh(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (direct_[v] != fresh.direct_[v]) return false;
    // Compare the *support* of the 2-hop counts (the knowable set);
    // counts themselves must match too since both track path counts.
    if (two_hop_count_[v].size() != fresh.two_hop_count_[v].size()) {
      return false;
    }
    for (const auto& [z, count] : fresh.two_hop_count_[v]) {
      auto it = two_hop_count_[v].find(z);
      if (it == two_hop_count_[v].end() || it->second != count) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dash::graph
