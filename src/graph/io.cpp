#include "graph/io.h"

#include <sstream>
#include <stdexcept>
#include <string>

namespace dash::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# dashheal edge list v1\n";
  out << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) out << "! " << v << '\n';
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    for (NodeId u : g.neighbors(v)) {
      if (v < u) out << v << ' ' << u << '\n';
    }
  }
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  long long n = -1;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> dead;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (n < 0) {
      if (!(ls >> n) || n < 0) {
        throw std::runtime_error("edge list: bad node-count header");
      }
      continue;
    }
    if (line[0] == '!') {
      char bang;
      long long v;
      if (!(ls >> bang >> v) || v < 0 || v >= n) {
        throw std::runtime_error("edge list: bad dead-node line");
      }
      dead.push_back(static_cast<NodeId>(v));
      continue;
    }
    long long a, b;
    if (!(ls >> a >> b) || a < 0 || b < 0 || a >= n || b >= n || a == b) {
      throw std::runtime_error("edge list: bad edge line: " + line);
    }
    edges.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
  }
  if (n < 0) throw std::runtime_error("edge list: missing header");
  Graph g(static_cast<std::size_t>(n));
  for (auto [a, b] : edges) g.add_edge(a, b);
  for (NodeId v : dead) g.delete_node(v);
  return g;
}

}  // namespace dash::graph
