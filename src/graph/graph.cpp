#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/check.h"

namespace dash::graph {

namespace {
std::uint64_t next_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Graph::Graph(std::size_t n)
    : offset_(n, 0),
      degree_(n, 0),
      capacity_(n, 0),
      alive_(n, true),
      alive_count_(n),
      uid_(next_uid()) {}

Graph::Graph(const Graph& other)
    : offset_(other.offset_),
      degree_(other.degree_),
      capacity_(other.capacity_),
      slab_(other.slab_),
      free_lists_(other.free_lists_),
      free_entries_(other.free_entries_),
      alive_(other.alive_),
      alive_count_(other.alive_count_),
      edge_count_(other.edge_count_),
      generation_(other.generation_),
      uid_(next_uid()),
      touched_(other.touched_),
      touched_base_(other.touched_base_),
      view_(other.view_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  Graph copy(other);  // fresh uid
  *this = std::move(copy);
  return *this;
}

void Graph::check_alive(NodeId v) const {
  DASH_CHECK_MSG(v < degree_.size(), "node id out of range");
  DASH_CHECK_MSG(alive_[v], "operation on deleted node");
}

void Graph::touch(NodeId v) {
  // Compact by dropping the whole retained window once it outgrows ~2n:
  // consumers further behind than that would take the full-rebuild
  // fallback anyway, and the bound keeps log memory O(n) under
  // unbounded churn.
  if (touched_.size() >= std::max<std::size_t>(256, 2 * degree_.size())) {
    touched_base_ += touched_.size();
    touched_.clear();
  }
  touched_.push_back(v);
}

NodeId Graph::add_node() {
  offset_.push_back(0);
  degree_.push_back(0);
  capacity_.push_back(0);
  alive_.push_back(true);
  ++alive_count_;
  ++generation_;
  const NodeId v = static_cast<NodeId>(degree_.size() - 1);
  touch(v);
  return v;
}

std::uint32_t Graph::alloc_block(std::uint32_t cap) {
  const auto cls = static_cast<std::size_t>(std::countr_zero(cap));
  if (cls < free_lists_.size() && !free_lists_[cls].empty()) {
    const std::uint32_t offset = free_lists_[cls].back();
    free_lists_[cls].pop_back();
    free_entries_ -= cap;
    return offset;
  }
  const std::size_t offset = slab_.size();
  DASH_CHECK_MSG(offset + cap <= 0xFFFFFFFFu, "neighbor slab overflow");
  slab_.resize(offset + cap);
  return static_cast<std::uint32_t>(offset);
}

void Graph::free_block(std::uint32_t offset, std::uint32_t cap) {
  const auto cls = static_cast<std::size_t>(std::countr_zero(cap));
  if (free_lists_.size() <= cls) free_lists_.resize(cls + 1);
  free_lists_[cls].push_back(offset);
  free_entries_ += cap;
}

void Graph::regrow(NodeId v, std::uint32_t new_cap) {
  const std::uint32_t old_off = offset_[v];
  const std::uint32_t old_cap = capacity_[v];
  const std::uint32_t new_off = alloc_block(new_cap);  // may move slab_
  std::copy(slab_.begin() + old_off, slab_.begin() + old_off + degree_[v],
            slab_.begin() + new_off);
  if (old_cap != 0) free_block(old_off, old_cap);
  offset_[v] = new_off;
  capacity_[v] = new_cap;
}

bool Graph::block_insert(NodeId v, NodeId x) {
  const std::uint32_t deg = degree_[v];
  const NodeId* base = slab_.data() + offset_[v];
  const std::uint32_t idx = static_cast<std::uint32_t>(
      std::lower_bound(base, base + deg, x) - base);
  if (idx < deg && base[idx] == x) return false;
  if (deg == capacity_[v]) {
    // Grow to the doubled block, copying around an insertion hole.
    const std::uint32_t old_off = offset_[v];
    const std::uint32_t old_cap = capacity_[v];
    const std::uint32_t new_cap = old_cap == 0 ? 2 : old_cap * 2;
    const std::uint32_t new_off = alloc_block(new_cap);  // may move slab_
    NodeId* src = slab_.data() + old_off;
    NodeId* dst = slab_.data() + new_off;
    std::copy(src, src + idx, dst);
    dst[idx] = x;
    std::copy(src + idx, src + deg, dst + idx + 1);
    if (old_cap != 0) free_block(old_off, old_cap);
    offset_[v] = new_off;
    capacity_[v] = new_cap;
  } else {
    NodeId* block = slab_.data() + offset_[v];
    std::copy_backward(block + idx, block + deg, block + deg + 1);
    block[idx] = x;
  }
  degree_[v] = deg + 1;
  return true;
}

bool Graph::block_erase(NodeId v, NodeId x) {
  const std::uint32_t deg = degree_[v];
  NodeId* base = slab_.data() + offset_[v];
  const std::uint32_t idx = static_cast<std::uint32_t>(
      std::lower_bound(base, base + deg, x) - base);
  if (idx == deg || base[idx] != x) return false;
  std::copy(base + idx + 1, base + deg, base + idx);
  degree_[v] = deg - 1;
  return true;
}

bool Graph::add_edge(NodeId a, NodeId b) {
  check_alive(a);
  check_alive(b);
  DASH_CHECK_MSG(a != b, "self-loops are not representable");
  if (!block_insert(a, b)) return false;
  block_insert(b, a);
  ++edge_count_;
  ++generation_;
  touch(a);
  touch(b);
  return true;
}

bool Graph::remove_edge(NodeId a, NodeId b) {
  check_alive(a);
  check_alive(b);
  if (!block_erase(a, b)) return false;
  block_erase(b, a);
  --edge_count_;
  ++generation_;
  touch(a);
  touch(b);
  return true;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  DASH_CHECK(a < degree_.size() && b < degree_.size());
  if (!alive_[a] || !alive_[b]) return false;
  const NodeId* base = slab_.data() + offset_[a];
  return std::binary_search(base, base + degree_[a], b);
}

std::vector<NodeId> Graph::delete_node(NodeId v) {
  check_alive(v);
  const NodeId* base = slab_.data() + offset_[v];
  std::vector<NodeId> former_neighbors(base, base + degree_[v]);
  for (NodeId u : former_neighbors) {
    block_erase(u, v);
    touch(u);
  }
  if (capacity_[v] != 0) {
    free_block(offset_[v], capacity_[v]);
    offset_[v] = 0;
    capacity_[v] = 0;
  }
  degree_[v] = 0;
  edge_count_ -= former_neighbors.size();
  alive_[v] = false;
  --alive_count_;
  ++generation_;
  touch(v);
  return former_neighbors;
}

void Graph::reserve_neighbors(NodeId v, std::size_t expected) {
  check_alive(v);
  if (expected <= capacity_[v]) return;
  const std::uint32_t new_cap = static_cast<std::uint32_t>(
      std::bit_ceil(std::max<std::size_t>(expected, 2)));
  regrow(v, new_cap);
  // No generation bump (topology is unchanged), but the block moved, so
  // delta-patching consumers must re-mirror v's descriptor.
  touch(v);
}

const FlatView& Graph::flat_view() const {
  if (!view_.matches(generation_)) view_.refresh(*this);
  return view_;
}

std::vector<NodeId> Graph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  const NodeId n = static_cast<NodeId>(degree_.size());
  for (NodeId v = 0; v < n; ++v) {
    if (alive_[v]) out.push_back(v);
  }
  return out;
}

bool Graph::same_topology(const Graph& other) const {
  if (num_nodes() != other.num_nodes()) return false;
  const NodeId n = static_cast<NodeId>(degree_.size());
  for (NodeId v = 0; v < n; ++v) {
    if (alive_[v] != other.alive_[v]) return false;
    if (!alive_[v]) continue;
    if (degree_[v] != other.degree_[v]) return false;
    const NodeId* mine = slab_.data() + offset_[v];
    const NodeId* theirs = other.slab_.data() + other.offset_[v];
    if (!std::equal(mine, mine + degree_[v], theirs)) return false;
  }
  return true;
}

}  // namespace dash::graph
