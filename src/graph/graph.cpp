#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace dash::graph {

Graph::Graph(std::size_t n)
    : adjacency_(n), alive_(n, true), alive_count_(n) {}

void Graph::check_alive(NodeId v) const {
  DASH_CHECK_MSG(v < adjacency_.size(), "node id out of range");
  DASH_CHECK_MSG(alive_[v], "operation on deleted node");
}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  alive_.push_back(true);
  ++alive_count_;
  ++generation_;
  return static_cast<NodeId>(adjacency_.size() - 1);
}

namespace {
/// Insert `x` into sorted vector `v` if absent; returns true on insert.
bool sorted_insert(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Erase `x` from sorted vector `v` if present; returns true on erase.
bool sorted_erase(std::vector<NodeId>& v, NodeId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}
}  // namespace

bool Graph::add_edge(NodeId a, NodeId b) {
  check_alive(a);
  check_alive(b);
  DASH_CHECK_MSG(a != b, "self-loops are not representable");
  const bool inserted = sorted_insert(adjacency_[a], b);
  if (!inserted) return false;
  sorted_insert(adjacency_[b], a);
  ++edge_count_;
  ++generation_;
  return true;
}

bool Graph::remove_edge(NodeId a, NodeId b) {
  check_alive(a);
  check_alive(b);
  const bool removed = sorted_erase(adjacency_[a], b);
  if (!removed) return false;
  sorted_erase(adjacency_[b], a);
  --edge_count_;
  ++generation_;
  return true;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  DASH_CHECK(a < adjacency_.size() && b < adjacency_.size());
  if (!alive_[a] || !alive_[b]) return false;
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::vector<NodeId> Graph::delete_node(NodeId v) {
  check_alive(v);
  std::vector<NodeId> former_neighbors = std::move(adjacency_[v]);
  adjacency_[v].clear();
  for (NodeId u : former_neighbors) {
    sorted_erase(adjacency_[u], v);
  }
  edge_count_ -= former_neighbors.size();
  alive_[v] = false;
  --alive_count_;
  ++generation_;
  return former_neighbors;
}

void Graph::reserve_neighbors(NodeId v, std::size_t expected) {
  check_alive(v);
  adjacency_[v].reserve(expected);
}

const FlatView& Graph::flat_view() const {
  if (!view_.matches(generation_)) view_.rebuild(*this);
  return view_;
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  check_alive(v);
  return adjacency_[v];
}

std::vector<NodeId> Graph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (NodeId v = 0; v < adjacency_.size(); ++v) {
    if (alive_[v]) out.push_back(v);
  }
  return out;
}

bool Graph::same_topology(const Graph& other) const {
  if (num_nodes() != other.num_nodes()) return false;
  for (NodeId v = 0; v < adjacency_.size(); ++v) {
    if (alive_[v] != other.alive_[v]) return false;
    if (alive_[v] && adjacency_[v] != other.adjacency_[v]) return false;
  }
  return true;
}

}  // namespace dash::graph
