// non_index.h -- neighbor-of-neighbor (NoN) knowledge maintenance.
//
// The paper's model (Sec. 1, "Our Model") assumes every node knows its
// neighbors' neighbors: "for all nodes x, y and z such that x is a
// neighbor of y and y is a neighbor of z, x knows z", citing Manku-
// Naor-Wieder and Naor-Wieder for maintenance techniques. This module
// implements that substrate: incremental 2-hop knowledge tables kept in
// sync with graph mutations, with the message cost of each update
// accounted (one message per informed neighbor).
//
// It is what makes DASH's O(1)-latency reconnection realistic: all
// members of a deletion's reconnection set are ex-neighbors of the
// deleted node, hence mutually known through it, so each can compute
// the reconstruction tree locally without extra discovery traffic. The
// tests assert exactly this sufficiency property along full schedules.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace dash::graph {

class NonIndex {
 public:
  /// Build tables for the current graph. O(sum of deg^2).
  explicit NonIndex(const Graph& g);

  /// Notify the index that edge {a,b} was just added to `g` (call
  /// *after* Graph::add_edge returned true).
  void on_add_edge(const Graph& g, NodeId a, NodeId b);

  /// Notify the index that `v` was just deleted (call *after*
  /// Graph::delete_node, passing its return value). The index still
  /// holds v's pre-deletion neighborhood internally.
  void on_delete_node(const Graph& g, NodeId v,
                      const std::vector<NodeId>& former_neighbors);

  /// True if x knows z: z == x, z is a neighbor, or z is reachable via
  /// one intermediate live neighbor.
  bool knows(NodeId x, NodeId z) const;

  /// Number of distinct 2-hop-or-closer nodes x knows (excluding x).
  std::size_t knowledge_size(NodeId x) const;

  /// Total maintenance messages sent so far (every mutation notifies
  /// the 1-hop neighborhood of each endpoint).
  std::uint64_t maintenance_messages() const { return messages_; }

  /// Recompute expected tables from `g` and compare; returns true when
  /// consistent (used by tests after randomized mutation sequences).
  bool consistent_with(const Graph& g) const;

 private:
  void add_two_hop(NodeId x, NodeId z);
  void remove_two_hop(NodeId x, NodeId z);

  /// direct_[x]: sorted live neighbor list (mirror of the graph).
  std::vector<std::vector<NodeId>> direct_;
  /// two_hop_count_[x][z] = number of live common neighbors y with
  /// x-y and y-z edges; z is "known" while the count is positive.
  std::vector<std::unordered_map<NodeId, std::uint32_t>> two_hop_count_;
  std::uint64_t messages_ = 0;
};

}  // namespace dash::graph
