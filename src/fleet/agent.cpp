#include "fleet/agent.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/runner.h"
#include "fleet/channel.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace dash::fleet {

namespace {

/// The lease keeper: one background thread sending HEARTBEAT at the
/// cadence the WELCOME requested. Send failures are ignored here --
/// the main loop notices a dead coordinator on its own next send or
/// recv, with a proper error message.
class HeartbeatThread {
 public:
  HeartbeatThread(Channel& ch, std::size_t period_ms)
      : thread_([this, &ch, period_ms] {
          std::unique_lock<std::mutex> lock(mutex_);
          while (!stop_) {
            if (cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                             [this] { return stop_; })) {
              break;
            }
            ch.send(make_heartbeat());
          }
        }) {}

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

[[noreturn]] void die_by_chaos() {
  ::raise(SIGKILL);
  ::_exit(127);  // unreachable; placates [[noreturn]]
}

}  // namespace

AgentReport run_agent(const exp::ExperimentSpec& spec,
                      const AgentOptions& opt) {
  spec.validate();
  const std::vector<exp::Cell> cells = spec.enumerate();
  const std::string name =
      opt.name.empty() ? "agent-" + std::to_string(::getpid()) : opt.name;
  const auto progress = [&](const std::string& line) {
    if (opt.progress) {
      opt.progress(line);
    } else {
      DASH_LOG_INFO << line;
    }
  };

  Channel ch = connect_channel(Endpoint::parse(opt.connect));
  if (!ch.send(make_hello(spec.hash(), name))) {
    throw std::runtime_error("coordinator closed during handshake");
  }
  std::optional<Message> welcome = ch.recv();
  if (!welcome) {
    throw std::runtime_error("coordinator closed during handshake");
  }
  if (welcome->type == MessageType::kError) {
    throw FrameError("coordinator rejected hello (" + welcome->code +
                     "): " + welcome->message);
  }
  if (welcome->type != MessageType::kWelcome) {
    throw FrameError("expected welcome, got " + type_name(welcome->type));
  }
  if (welcome->cells != cells.size()) {
    throw FrameError("coordinator serves " + std::to_string(welcome->cells) +
                     " cells, this spec enumerates " +
                     std::to_string(cells.size()));
  }
  const bool want_rows = welcome->rows;
  progress("fleet agent " + name + ": joined " + opt.connect + " (" +
           std::to_string(cells.size()) + " cells" +
           (want_rows ? ", streaming rows)" : ")"));

  std::optional<util::ThreadPool> pool;
  if (opt.threads != 1) pool.emplace(opt.threads);

  HeartbeatThread heartbeat(ch, std::max<std::size_t>(welcome->heartbeat_ms,
                                                      1));
  AgentReport report;
  while (true) {
    if (!ch.send(make_claim())) {
      throw std::runtime_error("coordinator vanished (claim send failed)");
    }
    std::optional<Message> m = ch.recv();
    if (!m) {
      throw std::runtime_error(
          "coordinator vanished (connection closed while waiting for a "
          "grant)");
    }
    if (m->type == MessageType::kHeartbeat) continue;  // echo, ignore
    if (m->type == MessageType::kShutdown) {
      report.shutdown_reason = m->text;
      progress("fleet agent " + name + ": shutdown (" + m->text + ") after " +
               std::to_string(report.cells_done) + " cells");
      return report;
    }
    if (m->type == MessageType::kError) {
      throw FrameError("coordinator error (" + m->code + "): " + m->message);
    }
    if (m->type != MessageType::kGrant) {
      throw FrameError("expected grant, got " + type_name(m->type));
    }
    const std::size_t index = m->cell;
    if (index >= cells.size()) {
      throw FrameError("granted cell " + std::to_string(index) +
                       " is out of range");
    }

    progress("fleet agent " + name + ": computing cell " +
             std::to_string(index));
    std::vector<std::string> row_lines;
    std::function<void(const exp::Cell&, const std::vector<api::RoundRow>&)>
        on_rows;
    if (want_rows) {
      on_rows = [&row_lines](const exp::Cell& cell,
                             const std::vector<api::RoundRow>& rows) {
        for (const api::RoundRow& row : rows) {
          row_lines.push_back(exp::rows_line(cell.index, row));
        }
      };
    }
    const exp::CellResult result =
        exp::run_cell(spec, cells[index], pool ? &*pool : nullptr, on_rows);
    const std::string record = exp::shard_line(exp::to_record(spec, result));

    if (want_rows && !row_lines.empty()) {
      if (!ch.send(make_rows(index, std::move(row_lines)))) {
        throw std::runtime_error("coordinator vanished (rows send failed)");
      }
    }
    if (opt.chaos.armed() && opt.chaos.cell == index) {
      // Socket-shaped chaos_strike: the record must not arrive whole.
      if (opt.chaos.kind == exp::ChaosPlan::Kind::kTorn) {
        const std::string framed =
            frame_bytes(encode_message(make_result(index, record)));
        ch.send_raw(framed.substr(0, framed.size() / 2));
      }
      die_by_chaos();
    }
    if (!ch.send(make_result(index, record))) {
      throw std::runtime_error("coordinator vanished (result send failed)");
    }
    ++report.cells_done;
  }
}

}  // namespace dash::fleet
