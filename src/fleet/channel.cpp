#include "fleet/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dash::fleet {

namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// sockaddr for an endpoint; returns the length used.
socklen_t fill_sockaddr(const Endpoint& ep, sockaddr_storage* storage) {
  std::memset(storage, 0, sizeof(*storage));
  if (ep.kind == Endpoint::Kind::kUnix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(sun->sun_path)) {
      throw std::invalid_argument("unix socket path too long: " + ep.path);
    }
    std::memcpy(sun->sun_path, ep.path.c_str(), ep.path.size() + 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  ep.path.size() + 1);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &sin->sin_addr) != 1) {
    throw std::invalid_argument("bad tcp host '" + ep.host +
                                "' (expected a dotted-quad address)");
  }
  return sizeof(sockaddr_in);
}

int make_socket(const Endpoint& ep) {
  const int domain = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  // SOCK_CLOEXEC: fleet sockets must not leak into spawned agents -- an
  // inherited listener fd keeps a dead agent's peer "connected" (the
  // kernel never delivers EOF while any copy is open), stalling lease
  // reassignment until the whole process tree exits.
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) die("socket");
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

// ---- Endpoint --------------------------------------------------------------

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      throw std::invalid_argument("empty unix socket path in '" + spec +
                                  "'");
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    std::string port_text;
    if (colon == std::string::npos) {
      out.host = "127.0.0.1";
      port_text = rest;
    } else {
      out.host = rest.substr(0, colon);
      port_text = rest.substr(colon + 1);
    }
    if (out.host.empty()) out.host = "127.0.0.1";
    unsigned long port = 0;
    const auto [end, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || end != port_text.data() + port_text.size() ||
        port_text.empty() || port > 65535) {
      throw std::invalid_argument("bad tcp port in '" + spec +
                                  "' (expected tcp:[host:]port)");
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
  }
  throw std::invalid_argument(
      "bad fleet endpoint '" + spec +
      "' (expected unix:<path> or tcp:[host:]<port>)");
}

std::string Endpoint::spec() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// ---- Channel ---------------------------------------------------------------

Channel::Channel(Channel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbuf_(std::move(other.inbuf_)) {}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
  }
  return *this;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool Channel::send_raw(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      die("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Channel::send(const Message& m) {
  return send_raw(frame_bytes(encode_message(m)));
}

std::optional<Message> Channel::recv() {
  while (true) {
    if (auto m = next()) return m;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return std::nullopt;
      die("recv");
    }
    if (n == 0) return std::nullopt;  // EOF (possibly mid-frame)
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Channel::feed() {
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(chunk))) return true;
      continue;  // a full chunk: more may be pending
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET and friends: the connection is dead
  }
}

std::optional<Message> Channel::next() {
  std::string payload;
  if (!take_frame(&inbuf_, &payload)) return std::nullopt;
  return decode_message(payload);
}

// ---- connect / listen ------------------------------------------------------

Channel connect_channel(const Endpoint& to) {
  const int fd = make_socket(to);
  sockaddr_storage addr;
  const socklen_t len = fill_sockaddr(to, &addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    die("connect to " + to.spec());
  }
  return Channel(fd);
}

Listener::Listener(const Endpoint& at) : endpoint_(at) {
  fd_ = make_socket(at);
  if (at.kind == Endpoint::Kind::kUnix) {
    ::unlink(at.path.c_str());  // stale socket from a crashed serve
  } else {
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage addr;
  const socklen_t len = fill_sockaddr(at, &addr);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), len) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    die("bind " + at.spec());
  }
  if (::listen(fd_, 64) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    die("listen on " + at.spec());
  }
  if (at.kind == Endpoint::Kind::kTcp && at.port == 0) {
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      endpoint_.port = ntohs(bound.sin_port);
    }
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

Channel Listener::accept() {
  while (true) {
    // accept4 so the accepted fd is CLOEXEC from birth -- a plain
    // accept + fcntl leaves a window where a concurrently spawned
    // agent inherits the connection.
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return Channel(fd);
    if (errno == EINTR) continue;
    die("accept on " + endpoint_.spec());
  }
}

}  // namespace dash::fleet
