// coordinator.h -- the `dash_lab serve` side of the fleet: owns the
// cell queue of one ExperimentSpec and leases cells to agents over the
// protocol in protocol.h, work-stealing style -- an agent claims one
// cell at a time, so fast agents naturally take more of the grid and a
// straggler never holds more than one cell hostage.
//
// Fault model. Every lease has a deadline refreshed by any frame from
// the owning agent (heartbeats while a cell computes, ROWS/RESULT when
// it finishes). An agent that dies (socket EOF, possibly mid-frame
// after a torn write) or goes silent past the deadline forfeits its
// lease: the cell goes back to the front of the queue, its staged rows
// are dropped, and the next CLAIM -- from any agent -- picks it up.
// Because every cell is deterministic, a reassigned cell reproduces the
// exact bytes the dead agent would have sent, so the merged document is
// byte-identical to a sequential run no matter how many agents died.
//
// Durability. Committed results are spooled to <state_dir>/records.jsonl
// (exp::shard_line format) and <state_dir>/rows.csv (exp::rows file
// format), flushed per cell -- the same files double as the resume
// manifest: `serve --resume` reloads them, skips finished cells, and
// carries on, surviving its own restart exactly like `dash_lab run
// --resume` does.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/spec.h"
#include "fleet/channel.h"

namespace dash::fleet {

struct CoordinatorOptions {
  /// Where to listen. unix:<state_dir>/fleet.sock when left empty.
  std::string listen;
  /// Spool + resume-manifest directory (created if absent).
  std::string state_dir = "dash_fleet";
  /// Reload the spool manifest and skip already-finished cells.
  bool resume = false;
  /// Collect per-round rows (agents are told to stream ROWS frames).
  bool rows = false;
  /// Lease deadline: an agent silent this long forfeits its cell.
  std::size_t lease_ms = 10000;
  /// Test hook: stop (checkpointing, not completing) after this many
  /// newly committed cells. 0 = run to completion.
  std::size_t stop_after = 0;
  /// Progress sink (one line per event); default logs via DASH_LOG.
  /// Set to a no-op to silence.
  std::function<void(const std::string&)> progress;
};

/// Per-agent tallies for the final report.
struct AgentStats {
  std::string name;
  std::size_t done = 0;        ///< cells this agent committed
  std::size_t forfeited = 0;   ///< leases taken back (death/timeout)
  bool connected = false;
};

struct FleetReport {
  bool complete = false;       ///< whole grid committed (vs stop_after)
  std::size_t cells = 0;       ///< grid size
  std::size_t done = 0;        ///< committed overall (incl. resumed)
  std::size_t running = 0;     ///< leased right now (status snapshots)
  std::size_t resumed = 0;     ///< cells loaded from the manifest
  std::size_t reassigned = 0;  ///< leases forfeited and requeued
  std::size_t duplicates = 0;  ///< late identical results ignored
  std::vector<AgentStats> agents;
  /// When complete: the merged BENCH_*.json document (byte-identical
  /// to a sequential exp::run) and, with rows, the canonical rows CSV.
  std::string document;
  std::string rows_csv;
};

/// The serve loop. Construct (binds the listener immediately, so
/// agents spawned right after can connect), then run() until the grid
/// completes or stop_after fires.
class Coordinator {
 public:
  Coordinator(exp::ExperimentSpec spec, CoordinatorOptions opt);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound endpoint (ephemeral tcp port resolved).
  const Endpoint& endpoint() const;

  /// Serve until every cell is committed (returns a complete report
  /// with the merged document) or stop_after newly committed cells
  /// (returns complete == false; the spool holds the checkpoint).
  /// Throws std::runtime_error on listener failure and
  /// std::invalid_argument on spec/manifest problems.
  FleetReport run();

  /// Spool paths inside a state dir (shared with the CLI and tests).
  static std::string records_path(const std::string& state_dir);
  static std::string rows_path(const std::string& state_dir);

 private:
  struct Impl;
  Impl* impl_;
};

/// A human-readable progress snapshot, served to STATUS clients and
/// printed by `dash_lab status`.
std::string render_status(const FleetReport& report);

}  // namespace dash::fleet
