// agent.h -- the `dash_lab agent` side of the fleet: connect to a
// coordinator, claim cells one at a time, compute each with
// exp::run_cell, stream the rows back (when the coordinator asked for
// them) and commit the ShardRecord line with a RESULT frame. A
// heartbeat thread keeps the lease alive while a cell computes, so
// only real death -- not slowness -- triggers reassignment.
//
// For fault-injection tests the agent honours an exp::ChaosPlan with
// socket-shaped strikes: `kill:<cell>` SIGKILLs after the cell's ROWS
// but before its RESULT (the coordinator sees EOF and reassigns);
// `torn:<cell>` writes *half* of the RESULT frame and then SIGKILLs --
// the mid-frame EOF a crashed peer leaves behind, which the
// coordinator must treat exactly like death.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "exp/chaos.h"
#include "exp/spec.h"

namespace dash::fleet {

struct AgentOptions {
  /// Coordinator endpoint spec ("unix:<path>" / "tcp:[host:]<port>").
  std::string connect;
  /// Display name in coordinator logs and status; "agent-<pid>" when
  /// empty.
  std::string name;
  /// Suite pool threads per cell: 0 = hardware, 1 = sequential.
  std::size_t threads = 1;
  /// Crash-fault injection (tests); unarmed by default.
  exp::ChaosPlan chaos;
  /// Progress sink; default logs via DASH_LOG. Set a no-op to silence.
  std::function<void(const std::string&)> progress;
};

struct AgentReport {
  std::size_t cells_done = 0;
  std::string shutdown_reason;  ///< the coordinator's SHUTDOWN text
};

/// Work until the coordinator says SHUTDOWN (returns its reason) or
/// vanishes (throws std::runtime_error -- an agent cannot tell a
/// crashed coordinator from a revoked lease, and either way its work
/// is unsalvageable). Throws FrameError when the coordinator rejects
/// the handshake (version or spec-hash mismatch) or breaks protocol,
/// and std::invalid_argument for an unparsable endpoint or spec.
AgentReport run_agent(const exp::ExperimentSpec& spec,
                      const AgentOptions& opt);

}  // namespace dash::fleet
