// protocol.h -- the dash::fleet wire protocol: length-prefixed JSON
// frames between a `dash_lab serve` coordinator and its `dash_lab
// agent` workers.
//
// Every frame is a 4-byte big-endian payload length followed by one
// JSON object whose "type" field names the message. The conversation:
//
//   agent                        coordinator
//   -----                        -----------
//   HELLO {version, spec_hash,
//          agent}           -->  verifies protocol version and spec
//                                hash (the same identity stamped into
//                                shard records)
//                           <--  WELCOME {version, cells,
//                                         heartbeat_ms, rows}
//   CLAIM {}                -->  leases the next pending cell to the
//                                agent (deferred until one is
//                                available)
//                           <--  GRANT {cell}    ... or ...
//                           <--  SHUTDOWN {reason} when the grid is
//                                complete
//   HEARTBEAT {}            -->  refreshes the agent's lease while a
//                                cell computes
//   ROWS {cell, lines}      -->  the cell's per-round rows (staged;
//                                committed only with the RESULT)
//   RESULT {cell, record}   -->  the cell's ShardRecord line; the
//                                coordinator spools it into the merge
//                                path and the agent CLAIMs again
//
//   status client                coordinator
//   -------------                -----------
//   STATUS {}               -->  progress snapshot, no HELLO needed
//                           <--  REPORT {text}
//
// Any side may send ERROR {code, message} before closing; codes mirror
// the replay layer's named errors (version-mismatch, spec-mismatch,
// protocol). A torn frame (short read, EOF mid-payload) is how a dead
// agent manifests to the coordinator -- FrameError for corruption,
// closed-channel for death -- and triggers cell reassignment, never a
// crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dash::fleet {

/// Protocol version stamped into every HELLO/WELCOME; bumped on any
/// incompatible change to the frame grammar.
inline constexpr int kProtocolVersion = 1;

/// Frames larger than this are rejected as corrupt (a length prefix of
/// garbage bytes would otherwise ask for gigabytes).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

/// Malformed frame or message (bad length prefix, unparsable JSON,
/// unknown type) -- the fleet mirror of replay::TraceError.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// HELLO carried a foreign protocol version.
class VersionMismatchError : public FrameError {
 public:
  VersionMismatchError(int got, int want);
  int peer_version() const { return peer_; }

 private:
  int peer_ = 0;
};

/// HELLO carried a spec hash that is not the coordinator's experiment.
class SpecMismatchError : public FrameError {
 public:
  SpecMismatchError(const std::string& got, const std::string& want);
};

enum class MessageType {
  kHello,
  kWelcome,
  kClaim,
  kGrant,
  kHeartbeat,
  kRows,
  kResult,
  kStatus,
  kReport,
  kShutdown,
  kError,
};

/// Wire spelling ("hello", "grant", ...).
std::string type_name(MessageType type);

/// One protocol message; fields beyond `type` are used per-type as the
/// header comment documents (unused ones stay at their defaults).
struct Message {
  MessageType type = MessageType::kHeartbeat;
  int version = kProtocolVersion;      ///< hello / welcome
  std::string spec_hash;               ///< hello
  std::string agent;                   ///< hello: display name
  std::size_t cells = 0;               ///< welcome: grid size
  std::size_t heartbeat_ms = 0;        ///< welcome: agent send cadence
  bool rows = false;                   ///< welcome: stream ROWS frames?
  std::size_t cell = 0;                ///< grant / rows / result
  std::vector<std::string> lines;      ///< rows: rows-file lines
  std::string record;                  ///< result: the ShardRecord line
  std::string text;                    ///< report / shutdown reason
  std::string code;                    ///< error code
  std::string message;                 ///< error detail
};

// ---- message (de)serialization --------------------------------------------

/// One message as its JSON payload (no length prefix, no newline).
std::string encode_message(const Message& m);

/// Strict inverse of encode_message. Throws FrameError on anything it
/// did not write (unknown type, missing field, trailing garbage).
Message decode_message(const std::string& payload);

/// JSON string escaping for payload fields (record lines, rows lines,
/// error text can carry quotes/backslashes/control bytes).
std::string escape_json(const std::string& s);
/// Inverse of escape_json; false on malformed escapes.
bool unescape_json(const std::string& s, std::string* out);

// ---- framing ---------------------------------------------------------------

/// Length-prefix `payload`: 4 bytes big-endian size, then the bytes.
std::string frame_bytes(const std::string& payload);

/// Incremental frame extractor over a receive buffer: when `buf` holds
/// at least one complete frame, removes it from the front, stores its
/// payload in *out and returns true. Returns false when more bytes are
/// needed. Throws FrameError for an oversized or zero length prefix.
bool take_frame(std::string* buf, std::string* out);

// ---- convenience constructors ---------------------------------------------

Message make_hello(const std::string& spec_hash, const std::string& agent);
Message make_welcome(std::size_t cells, std::size_t heartbeat_ms, bool rows);
Message make_claim();
Message make_grant(std::size_t cell);
Message make_heartbeat();
Message make_rows(std::size_t cell, std::vector<std::string> lines);
Message make_result(std::size_t cell, std::string record);
Message make_status();
Message make_report(std::string text);
Message make_shutdown(std::string reason);
Message make_error(std::string code, std::string message);

}  // namespace dash::fleet
