#include "fleet/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>

#include "exp/runner.h"
#include "util/log.h"

namespace dash::fleet {

namespace {

using Clock = std::chrono::steady_clock;

/// How often the coordinator emits an unprompted progress line.
constexpr std::chrono::milliseconds kProgressPeriod(5000);

/// One accepted connection: an agent (after HELLO), a status client,
/// or a stranger that never introduced itself.
struct Conn {
  explicit Conn(Channel c) : ch(std::move(c)) {}

  Channel ch;
  bool hello = false;
  std::string name;
  std::size_t stats = 0;       ///< index into FleetReport::agents
  bool claim_pending = false;
  bool has_lease = false;
  std::size_t lease_cell = 0;
  Clock::time_point deadline;
  /// ROWS frames staged per cell, committed only with the RESULT.
  std::map<std::size_t, std::vector<std::string>> staged;
  bool dead = false;
};

/// The default unix socket lives inside the state dir, which must
/// exist before bind; the spool files want it anyway.
Endpoint resolve_listen(const CoordinatorOptions& o) {
  std::filesystem::create_directories(o.state_dir);
  return Endpoint::parse(
      o.listen.empty() ? "unix:" + o.state_dir + "/fleet.sock" : o.listen);
}

/// Line-oriented spool writer over an O_CLOEXEC fd. std::ofstream
/// exposes no descriptor, so it cannot set the flag -- and a spool fd
/// inherited by a spawned agent keeps writing position shared across
/// processes *and* holds the file open past coordinator restart, so
/// the manifest a --resume reads could still be growing. Every line is
/// a full write(2): each committed record is durable in the spool the
/// moment commit() returns, which is the resume contract.
class SpoolFile {
 public:
  SpoolFile() = default;
  ~SpoolFile() { close(); }
  SpoolFile(const SpoolFile&) = delete;
  SpoolFile& operator=(const SpoolFile&) = delete;

  void open(const std::string& path) {
    close();
    fd_ = ::open(path.c_str(),
                 O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    ok_ = fd_ >= 0;
  }

  void write_line(const std::string& line) {
    if (fd_ < 0) {
      ok_ = false;
      return;
    }
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok_ = false;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  bool ok() const { return ok_; }
  int fd() const { return fd_; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool ok_ = true;
};

}  // namespace

struct Coordinator::Impl {
  Impl(exp::ExperimentSpec s, CoordinatorOptions o)
      : spec(std::move(s)),
        opt(std::move(o)),
        hash(spec.hash()),
        cells(spec.enumerate()),
        listener(resolve_listen(opt)) {}

  exp::ExperimentSpec spec;
  CoordinatorOptions opt;
  std::string hash;
  std::vector<exp::Cell> cells;
  Listener listener;

  std::vector<std::unique_ptr<Conn>> conns;
  std::deque<std::size_t> pending;       ///< cells nobody holds
  std::set<std::size_t> running;         ///< leased cells
  std::map<std::size_t, std::string> done;  ///< cell -> group_json
  std::vector<exp::ShardRecord> records;
  std::vector<exp::RowsRecord> rows;
  SpoolFile records_out;
  SpoolFile rows_out;

  FleetReport report;
  std::size_t session_committed = 0;     ///< excludes resumed cells
  Clock::time_point next_progress = Clock::now();

  void progress(const std::string& line) {
    if (opt.progress) {
      opt.progress(line);
    } else {
      DASH_LOG_INFO << line;
    }
  }

  std::size_t heartbeat_ms() const {
    return std::max<std::size_t>(opt.lease_ms / 4, 1);
  }

  std::size_t stats_index(const std::string& name) {
    for (std::size_t i = 0; i < report.agents.size(); ++i) {
      if (report.agents[i].name == name) return i;
    }
    report.agents.push_back(AgentStats{name, 0, 0, false});
    return report.agents.size() - 1;
  }

  /// Drop every line of state the connection holds. A held lease goes
  /// back to the *front* of the queue so reassignment happens before
  /// fresh work is handed out.
  void forfeit(Conn& c, const std::string& why) {
    if (c.has_lease) {
      pending.push_front(c.lease_cell);
      running.erase(c.lease_cell);
      ++report.reassigned;
      ++report.agents[c.stats].forfeited;
      progress("fleet: agent " + c.name + " lost cell " +
               std::to_string(c.lease_cell) + " (" + why + "): reassigning");
      c.has_lease = false;
    }
    if (c.hello) report.agents[c.stats].connected = false;
    c.staged.clear();
    c.dead = true;
  }

  void snapshot_counts() {
    report.cells = cells.size();
    report.done = done.size();
    report.running = running.size();
  }

  FleetReport status_report() {
    snapshot_counts();
    FleetReport out = report;
    out.document.clear();
    out.rows_csv.clear();
    return out;
  }

  void handle_hello(Conn& c, const Message& m) {
    if (m.version != kProtocolVersion) {
      const VersionMismatchError err(m.version, kProtocolVersion);
      c.ch.send(make_error("version-mismatch", err.what()));
      c.dead = true;
      return;
    }
    if (m.spec_hash != hash) {
      const SpecMismatchError err(m.spec_hash, hash);
      c.ch.send(make_error("spec-mismatch", err.what()));
      c.dead = true;
      return;
    }
    c.hello = true;
    c.name = m.agent.empty() ? "agent" : m.agent;
    c.stats = stats_index(c.name);
    report.agents[c.stats].connected = true;
    c.ch.send(make_welcome(cells.size(), heartbeat_ms(), opt.rows));
    progress("fleet: agent " + c.name + " joined (" +
             std::to_string(done.size()) + "/" +
             std::to_string(cells.size()) + " cells done)");
  }

  void commit(Conn& c, std::size_t cell, const std::string& record_line) {
    exp::ShardRecord rec;
    if (!exp::parse_shard_line(record_line, &rec) || rec.cell != cell) {
      throw FrameError("malformed result record for cell " +
                       std::to_string(cell));
    }
    if (rec.spec_hash != hash) {
      throw SpecMismatchError(rec.spec_hash, hash);
    }
    if (c.has_lease && c.lease_cell == cell) c.has_lease = false;
    const auto it = done.find(cell);
    if (it != done.end()) {
      if (it->second != rec.group_json) {
        throw std::invalid_argument(
            "fleet: two agents produced different results for cell " +
            std::to_string(cell) + " -- determinism violated");
      }
      ++report.duplicates;
      c.staged.erase(cell);
      return;
    }
    // Rows first: the record line is the commit point (resume keeps a
    // cell only once its record landed; orphan rows are harmless
    // identical duplicates to merged_rows).
    const auto staged = c.staged.find(cell);
    if (staged != c.staged.end()) {
      for (const std::string& line : staged->second) {
        exp::RowsRecord row;
        if (!exp::parse_rows_line(line, &row) || row.cell != cell) {
          throw FrameError("malformed rows line for cell " +
                           std::to_string(cell));
        }
        rows.push_back(std::move(row));
        rows_out.write_line(line);
      }
      c.staged.erase(staged);
    }
    records_out.write_line(exp::shard_line(rec));
    done.emplace(cell, rec.group_json);
    records.push_back(std::move(rec));
    running.erase(cell);
    const auto in_queue = std::find(pending.begin(), pending.end(), cell);
    if (in_queue != pending.end()) pending.erase(in_queue);
    ++session_committed;
    ++report.agents[c.stats].done;
    progress("fleet: cell " + std::to_string(cell) + " committed by " +
             c.name + " (" + std::to_string(done.size()) + "/" +
             std::to_string(cells.size()) + ")");
  }

  void handle(Conn& c, const Message& m) {
    if (m.type == MessageType::kHello) {
      handle_hello(c, m);
      return;
    }
    if (m.type == MessageType::kStatus) {
      c.ch.send(make_report(render_status(status_report())));
      return;
    }
    if (!c.hello) {
      c.ch.send(make_error("protocol", "say hello first"));
      c.dead = true;
      return;
    }
    if (c.has_lease) c.deadline = Clock::now() +
                                  std::chrono::milliseconds(opt.lease_ms);
    switch (m.type) {
      case MessageType::kClaim:
        c.claim_pending = true;
        break;
      case MessageType::kHeartbeat:
        break;
      case MessageType::kRows: {
        auto& lines = c.staged[m.cell];
        lines.insert(lines.end(), m.lines.begin(), m.lines.end());
        break;
      }
      case MessageType::kResult:
        commit(c, m.cell, m.record);
        break;
      case MessageType::kShutdown:
        forfeit(c, "agent said goodbye");
        break;
      case MessageType::kError:
        progress("fleet: agent " + c.name + " reported error " + m.code +
                 ": " + m.message);
        forfeit(c, "agent error " + m.code);
        break;
      default:
        c.ch.send(make_error("protocol", "unexpected " + type_name(m.type) +
                                             " from an agent"));
        forfeit(c, "protocol error");
    }
  }

  /// Hand pending cells to claim-pending agents (FIFO over the
  /// connection list); tell idle claimants to shut down once the grid
  /// has no work left to hand out.
  void grant_pass() {
    for (auto& cp : conns) {
      Conn& c = *cp;
      if (c.dead || !c.claim_pending) continue;
      if (!pending.empty()) {
        const std::size_t cell = pending.front();
        pending.pop_front();
        if (!c.ch.send(make_grant(cell))) {
          pending.push_front(cell);
          forfeit(c, "send failed");
          continue;
        }
        c.claim_pending = false;
        c.has_lease = true;
        c.lease_cell = cell;
        c.deadline = Clock::now() + std::chrono::milliseconds(opt.lease_ms);
        running.insert(cell);
        progress("fleet: cell " + std::to_string(cell) + " leased to " +
                 c.name);
      } else if (done.size() == cells.size()) {
        c.ch.send(make_shutdown("grid complete"));
        c.claim_pending = false;
        c.dead = true;
      }
      // else: no cell free yet -- the claim stays pending until a
      // lease is forfeited or the grid completes.
    }
  }

  void reap_expired() {
    const auto now = Clock::now();
    for (auto& cp : conns) {
      Conn& c = *cp;
      if (!c.dead && c.has_lease && now >= c.deadline) {
        c.ch.send(make_error("protocol", "lease expired"));
        forfeit(c, "lease expired after " + std::to_string(opt.lease_ms) +
                       "ms of silence");
      }
    }
  }

  void drain(Conn& c) {
    while (!c.dead) {
      std::optional<Message> m;
      try {
        m = c.ch.next();
      } catch (const FrameError& e) {
        c.ch.send(make_error("protocol", e.what()));
        forfeit(c, std::string("corrupt frame: ") + e.what());
        return;
      }
      if (!m) return;
      try {
        handle(c, *m);
      } catch (const FrameError& e) {
        c.ch.send(make_error("protocol", e.what()));
        forfeit(c, e.what());
        return;
      }
    }
  }

  /// Load the resume manifest, keeping only records of this spec and
  /// rows of committed cells; rewrite both spools canonically so a
  /// torn final line from the previous serve disappears.
  void load_manifest() {
    const std::string rec_path = records_path(opt.state_dir);
    if (std::filesystem::exists(rec_path)) {
      for (exp::ShardRecord& rec : exp::load_shard_file(rec_path)) {
        if (rec.spec_hash != hash) {
          throw std::invalid_argument(
              "resume manifest " + rec_path + " is for spec " +
              rec.spec_hash + ", not " + hash +
              " -- point --state-dir somewhere fresh");
        }
        if (rec.cell >= cells.size()) {
          throw std::invalid_argument("resume manifest cell " +
                                      std::to_string(rec.cell) +
                                      " is out of range");
        }
        if (done.count(rec.cell)) continue;
        done.emplace(rec.cell, rec.group_json);
        records.push_back(std::move(rec));
      }
    }
    const std::string rows_file = rows_path(opt.state_dir);
    if (opt.rows && std::filesystem::exists(rows_file)) {
      for (exp::RowsRecord& row : exp::load_rows_file(rows_file)) {
        if (done.count(row.cell)) rows.push_back(std::move(row));
      }
    }
    report.resumed = done.size();
  }

  void open_spools() {
    std::filesystem::create_directories(opt.state_dir);
    if (opt.resume) load_manifest();
    records_out.open(records_path(opt.state_dir));
    for (const exp::ShardRecord& rec : records) {
      records_out.write_line(exp::shard_line(rec));
    }
    if (!records_out.ok()) {
      throw std::runtime_error("cannot write spool " +
                               records_path(opt.state_dir));
    }
    if (opt.rows) {
      rows_out.open(rows_path(opt.state_dir));
      rows_out.write_line(exp::rows_header());
      for (const exp::RowsRecord& row : rows) rows_out.write_line(row.line);
      if (!rows_out.ok()) {
        throw std::runtime_error("cannot write spool " +
                                 rows_path(opt.state_dir));
      }
    }
  }

  void broadcast_shutdown(const std::string& reason) {
    for (auto& cp : conns) {
      if (!cp->dead) cp->ch.send(make_shutdown(reason));
      cp->dead = true;
    }
    conns.clear();
  }

  void periodic_progress() {
    const auto now = Clock::now();
    if (now < next_progress) return;
    next_progress = now + kProgressPeriod;
    std::size_t connected = 0;
    for (const AgentStats& a : report.agents) connected += a.connected;
    progress("fleet: " + std::to_string(done.size()) + "/" +
             std::to_string(cells.size()) + " cells done, " +
             std::to_string(running.size()) + " running, " +
             std::to_string(pending.size()) + " pending, " +
             std::to_string(connected) + " agents connected");
  }

  FleetReport run() {
    open_spools();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!done.count(i)) pending.push_back(i);
    }
    progress("fleet: serving " + spec.hash() + " at " +
             listener.endpoint().spec() + ": " + std::to_string(done.size()) +
             "/" + std::to_string(cells.size()) + " cells done" +
             (report.resumed ? " (resumed)" : ""));

    while (true) {
      if (done.size() == cells.size()) {
        broadcast_shutdown("grid complete");
        report.complete = true;
        break;
      }
      if (opt.stop_after > 0 && session_committed >= opt.stop_after) {
        broadcast_shutdown("coordinator checkpointing");
        report.complete = false;
        progress("fleet: checkpoint after " +
                 std::to_string(session_committed) +
                 " cells; resume with --resume");
        break;
      }

      std::vector<pollfd> fds;
      fds.push_back({listener.fd(), POLLIN, 0});
      for (auto& cp : conns) fds.push_back({cp->ch.fd(), POLLIN, 0});

      int timeout = -1;
      const auto now = Clock::now();
      auto wake = next_progress;
      for (auto& cp : conns) {
        if (!cp->dead && cp->has_lease && cp->deadline < wake) {
          wake = cp->deadline;
        }
      }
      timeout = static_cast<int>(std::max<std::int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(wake - now)
              .count(),
          0));

      const int ready = ::poll(fds.data(), fds.size(), timeout);
      if (ready < 0 && errno != EINTR) {
        throw std::runtime_error("fleet poll failed");
      }

      if (ready > 0 && (fds[0].revents & POLLIN)) {
        conns.push_back(std::make_unique<Conn>(listener.accept()));
      }
      for (std::size_t i = 0; i < conns.size(); ++i) {
        Conn& c = *conns[i];
        const short revents =
            i + 1 < fds.size() ? fds[i + 1].revents : short{0};
        if (revents & (POLLIN | POLLHUP | POLLERR)) {
          if (!c.ch.feed()) {
            drain(c);  // frames that landed before the EOF still count
            if (!c.dead) forfeit(c, "connection closed");
          } else {
            drain(c);
          }
        }
      }
      reap_expired();
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const std::unique_ptr<Conn>& c) {
                                   return c->dead;
                                 }),
                  conns.end());
      grant_pass();
      periodic_progress();
    }

    snapshot_counts();
    report.running = 0;
    if (report.complete) {
      report.document = exp::merged_document(spec, records);
      if (opt.rows) report.rows_csv = exp::merged_rows(rows);
    }
    return report;
  }
};

Coordinator::Coordinator(exp::ExperimentSpec spec, CoordinatorOptions opt) {
  spec.validate();
  impl_ = new Impl(std::move(spec), std::move(opt));
}

Coordinator::~Coordinator() { delete impl_; }

const Endpoint& Coordinator::endpoint() const {
  return impl_->listener.endpoint();
}

FleetReport Coordinator::run() { return impl_->run(); }

std::string Coordinator::records_path(const std::string& state_dir) {
  return state_dir + "/records.jsonl";
}

std::string Coordinator::rows_path(const std::string& state_dir) {
  return state_dir + "/rows.csv";
}

std::string render_status(const FleetReport& report) {
  std::string out = "fleet: " + std::to_string(report.done) + "/" +
                    std::to_string(report.cells) + " cells done, " +
                    std::to_string(report.running) + " running, " +
                    std::to_string(report.cells - report.done -
                                   report.running) +
                    " pending";
  out += "\n  resumed " + std::to_string(report.resumed) + ", reassigned " +
         std::to_string(report.reassigned) + ", duplicate results " +
         std::to_string(report.duplicates);
  for (const AgentStats& a : report.agents) {
    out += "\n  " + a.name + ": " + std::to_string(a.done) + " done, " +
           std::to_string(a.forfeited) + " forfeited" +
           (a.connected ? "" : " (gone)");
  }
  return out;
}

}  // namespace dash::fleet
