// channel.h -- sockets and frame transport for the fleet protocol.
//
// An Endpoint is where a coordinator listens and agents connect, in
// one of two plain-POSIX spellings (no third-party transport):
//
//   unix:<path>          AF_UNIX stream socket at <path>
//   tcp:<host>:<port>    AF_INET loopback-or-LAN TCP (port 0 binds an
//                        ephemeral port; Listener::endpoint() reports
//                        the actual one)
//
// A Channel owns one connected fd and moves whole protocol frames:
// send() writes a length-prefixed message (MSG_NOSIGNAL -- a dead peer
// is a return value here, never a SIGPIPE), recv() blocks for the next
// complete frame. Writes are mutex-serialized so an agent's heartbeat
// thread can share the socket with its result stream. The receive path
// also powers the coordinator's non-blocking poll loop via
// feed()/next() on the inbound buffer.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "fleet/protocol.h"

namespace dash::fleet {

/// A parsed listen/connect address. Throws std::invalid_argument for
/// anything but the two documented spellings.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         ///< unix: socket path
  std::string host;         ///< tcp: host (default 127.0.0.1)
  std::uint16_t port = 0;   ///< tcp: port (0 = ephemeral when listening)

  static Endpoint parse(const std::string& spec);
  /// Canonical spec ("unix:/tmp/f.sock", "tcp:127.0.0.1:4815").
  std::string spec() const;
};

/// RAII fd with frame-granular I/O.
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { close(); }
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Frame and write one message. Returns false when the peer is gone
  /// (EPIPE/ECONNRESET); throws std::runtime_error on other I/O errors.
  bool send(const Message& m);

  /// Write raw pre-framed bytes (the torn-frame chaos path). Same
  /// return contract as send().
  bool send_raw(const std::string& bytes);

  /// Block for the next complete frame; nullopt on orderly EOF (or EOF
  /// mid-frame -- a dead peer, indistinguishable on purpose). Throws
  /// FrameError for corrupt length prefixes.
  std::optional<Message> recv();

  /// Non-blocking pump for poll loops: read whatever is available into
  /// the inbound buffer. Returns false when the peer closed or the read
  /// failed (the connection is dead either way).
  bool feed();

  /// Pop the next buffered complete frame, if any.
  std::optional<Message> next();

 private:
  int fd_ = -1;
  std::string inbuf_;
  std::mutex write_mutex_;
};

/// Connect to a coordinator. Throws std::runtime_error (with errno
/// text) when nothing listens there.
Channel connect_channel(const Endpoint& to);

/// A bound, listening socket.
class Listener {
 public:
  /// Bind + listen. Throws std::runtime_error on failure (address in
  /// use, bad path, ...). A unix endpoint unlinks a stale socket file
  /// first; the file is removed again on destruction.
  explicit Listener(const Endpoint& at);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  /// The actual endpoint (tcp port resolved when 0 was requested).
  const Endpoint& endpoint() const { return endpoint_; }

  /// Accept one pending connection (call after poll says readable).
  Channel accept();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

}  // namespace dash::fleet
