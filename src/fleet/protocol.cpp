#include "fleet/protocol.h"

#include <array>
#include <utility>

namespace dash::fleet {

namespace {

/// The wire spellings, indexed by MessageType.
constexpr std::array<const char*, 11> kTypeNames = {
    "hello",  "welcome", "claim",  "grant",    "heartbeat", "rows",
    "result", "status",  "report", "shutdown", "error",
};

// ---- strict positional scanning (shard-line style) ------------------------

bool expect(const std::string& s, std::size_t* pos, const char* lit) {
  const std::size_t len = std::char_traits<char>::length(lit);
  if (s.compare(*pos, len, lit) != 0) return false;
  *pos += len;
  return true;
}

bool scan_size(const std::string& s, std::size_t* pos, std::size_t* out) {
  const std::size_t start = *pos;
  std::size_t value = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[*pos] - '0');
    ++*pos;
  }
  if (*pos == start) return false;
  *out = value;
  return true;
}

/// Scan a JSON string literal (opening quote at *pos) into *out,
/// unescaping; advances past the closing quote.
bool scan_string(const std::string& s, std::size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++*pos;
  std::string raw;
  while (*pos < s.size() && s[*pos] != '"') {
    if (s[*pos] == '\\') {
      if (*pos + 1 >= s.size()) return false;
      raw += s[*pos];
      raw += s[*pos + 1];
      *pos += 2;
      continue;
    }
    raw += s[*pos];
    ++*pos;
  }
  if (*pos >= s.size()) return false;
  ++*pos;  // closing quote
  return unescape_json(raw, out);
}

void append_string_field(std::string* out, const char* key,
                         const std::string& value, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":\"";
  *out += escape_json(value);
  *out += '"';
}

void append_size_field(std::string* out, const char* key, std::size_t value,
                       bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
}

[[noreturn]] void bad(const std::string& payload, const char* why) {
  std::string head = payload.substr(0, 96);
  throw FrameError(std::string("malformed fleet message (") + why +
                   "): " + head);
}

}  // namespace

VersionMismatchError::VersionMismatchError(int got, int want)
    : FrameError("fleet protocol version mismatch: peer speaks v" +
                 std::to_string(got) + ", this build is v" +
                 std::to_string(want) + " -- update the older side"),
      peer_(got) {}

SpecMismatchError::SpecMismatchError(const std::string& got,
                                     const std::string& want)
    : FrameError("fleet spec hash mismatch: agent was given spec " + got +
                 ", the coordinator serves " + want +
                 " -- hand every agent the coordinator's exact spec") {}

std::string type_name(MessageType type) {
  return kTypeNames[static_cast<std::size_t>(type)];
}

// ---- escaping --------------------------------------------------------------

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[c >> 4];
          out += kHex[c & 0xF];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

bool unescape_json(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out->push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) return false;
    const char e = s[++i];
    switch (e) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i + 1 + static_cast<std::size_t>(k)];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        if (value > 0xFF) return false;  // only \u00XX is ever written
        out->push_back(static_cast<char>(value));
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

// ---- message (de)serialization --------------------------------------------

std::string encode_message(const Message& m) {
  std::string out = "{\"type\":\"";
  out += type_name(m.type);
  out += '"';
  bool first = false;
  switch (m.type) {
    case MessageType::kHello:
      append_size_field(&out, "version",
                        static_cast<std::size_t>(m.version), &first);
      append_string_field(&out, "spec_hash", m.spec_hash, &first);
      append_string_field(&out, "agent", m.agent, &first);
      break;
    case MessageType::kWelcome:
      append_size_field(&out, "version",
                        static_cast<std::size_t>(m.version), &first);
      append_size_field(&out, "cells", m.cells, &first);
      append_size_field(&out, "heartbeat_ms", m.heartbeat_ms, &first);
      append_size_field(&out, "rows", m.rows ? 1 : 0, &first);
      break;
    case MessageType::kGrant:
      append_size_field(&out, "cell", m.cell, &first);
      break;
    case MessageType::kRows: {
      append_size_field(&out, "cell", m.cell, &first);
      out += ",\"lines\":[";
      for (std::size_t i = 0; i < m.lines.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += escape_json(m.lines[i]);
        out += '"';
      }
      out += ']';
      break;
    }
    case MessageType::kResult:
      append_size_field(&out, "cell", m.cell, &first);
      append_string_field(&out, "record", m.record, &first);
      break;
    case MessageType::kReport:
    case MessageType::kShutdown:
      append_string_field(&out, "text", m.text, &first);
      break;
    case MessageType::kError:
      append_string_field(&out, "code", m.code, &first);
      append_string_field(&out, "message", m.message, &first);
      break;
    case MessageType::kClaim:
    case MessageType::kHeartbeat:
    case MessageType::kStatus:
      break;
  }
  out += '}';
  return out;
}

Message decode_message(const std::string& payload) {
  std::size_t pos = 0;
  Message m;
  if (!expect(payload, &pos, "{\"type\":\"")) bad(payload, "no type");
  std::size_t type_index = kTypeNames.size();
  for (std::size_t i = 0; i < kTypeNames.size(); ++i) {
    std::size_t probe = pos;
    if (expect(payload, &probe, kTypeNames[i]) && probe < payload.size() &&
        payload[probe] == '"') {
      type_index = i;
      pos = probe + 1;
      break;
    }
  }
  if (type_index == kTypeNames.size()) bad(payload, "unknown type");
  m.type = static_cast<MessageType>(type_index);

  const auto scan_str = [&](const char* key, std::string* out) {
    std::string lit = ",\"";
    lit += key;
    lit += "\":";
    if (!expect(payload, &pos, lit.c_str()) ||
        !scan_string(payload, &pos, out)) {
      bad(payload, key);
    }
  };
  const auto scan_num = [&](const char* key, std::size_t* out) {
    std::string lit = ",\"";
    lit += key;
    lit += "\":";
    if (!expect(payload, &pos, lit.c_str()) ||
        !scan_size(payload, &pos, out)) {
      bad(payload, key);
    }
  };

  switch (m.type) {
    case MessageType::kHello: {
      std::size_t version = 0;
      scan_num("version", &version);
      m.version = static_cast<int>(version);
      scan_str("spec_hash", &m.spec_hash);
      scan_str("agent", &m.agent);
      break;
    }
    case MessageType::kWelcome: {
      std::size_t version = 0;
      scan_num("version", &version);
      m.version = static_cast<int>(version);
      scan_num("cells", &m.cells);
      scan_num("heartbeat_ms", &m.heartbeat_ms);
      std::size_t rows = 0;
      scan_num("rows", &rows);
      if (rows > 1) bad(payload, "rows");
      m.rows = rows == 1;
      break;
    }
    case MessageType::kGrant:
      scan_num("cell", &m.cell);
      break;
    case MessageType::kRows: {
      scan_num("cell", &m.cell);
      if (!expect(payload, &pos, ",\"lines\":[")) bad(payload, "lines");
      if (pos < payload.size() && payload[pos] == ']') {
        ++pos;
      } else {
        while (true) {
          std::string line;
          if (!scan_string(payload, &pos, &line)) bad(payload, "lines");
          m.lines.push_back(std::move(line));
          if (pos >= payload.size()) bad(payload, "lines");
          if (payload[pos] == ',') {
            ++pos;
            continue;
          }
          if (payload[pos] == ']') {
            ++pos;
            break;
          }
          bad(payload, "lines");
        }
      }
      break;
    }
    case MessageType::kResult:
      scan_num("cell", &m.cell);
      scan_str("record", &m.record);
      break;
    case MessageType::kReport:
    case MessageType::kShutdown:
      scan_str("text", &m.text);
      break;
    case MessageType::kError:
      scan_str("code", &m.code);
      scan_str("message", &m.message);
      break;
    case MessageType::kClaim:
    case MessageType::kHeartbeat:
    case MessageType::kStatus:
      break;
  }
  if (!expect(payload, &pos, "}") || pos != payload.size()) {
    bad(payload, "trailing bytes");
  }
  return m;
}

// ---- framing ---------------------------------------------------------------

std::string frame_bytes(const std::string& payload) {
  const auto size = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(payload.size() + 4);
  out += static_cast<char>((size >> 24) & 0xFF);
  out += static_cast<char>((size >> 16) & 0xFF);
  out += static_cast<char>((size >> 8) & 0xFF);
  out += static_cast<char>(size & 0xFF);
  out += payload;
  return out;
}

bool take_frame(std::string* buf, std::string* out) {
  if (buf->size() < 4) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>((*buf)[i]));
  };
  const std::uint32_t size = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (size == 0 || size > kMaxFrameBytes) {
    throw FrameError("corrupt frame length prefix: " + std::to_string(size));
  }
  if (buf->size() < 4 + static_cast<std::size_t>(size)) return false;
  *out = buf->substr(4, size);
  buf->erase(0, 4 + static_cast<std::size_t>(size));
  return true;
}

// ---- convenience constructors ---------------------------------------------

Message make_hello(const std::string& spec_hash, const std::string& agent) {
  Message m;
  m.type = MessageType::kHello;
  m.version = kProtocolVersion;
  m.spec_hash = spec_hash;
  m.agent = agent;
  return m;
}

Message make_welcome(std::size_t cells, std::size_t heartbeat_ms, bool rows) {
  Message m;
  m.type = MessageType::kWelcome;
  m.version = kProtocolVersion;
  m.cells = cells;
  m.heartbeat_ms = heartbeat_ms;
  m.rows = rows;
  return m;
}

Message make_claim() {
  Message m;
  m.type = MessageType::kClaim;
  return m;
}

Message make_grant(std::size_t cell) {
  Message m;
  m.type = MessageType::kGrant;
  m.cell = cell;
  return m;
}

Message make_heartbeat() {
  Message m;
  m.type = MessageType::kHeartbeat;
  return m;
}

Message make_rows(std::size_t cell, std::vector<std::string> lines) {
  Message m;
  m.type = MessageType::kRows;
  m.cell = cell;
  m.lines = std::move(lines);
  return m;
}

Message make_result(std::size_t cell, std::string record) {
  Message m;
  m.type = MessageType::kResult;
  m.cell = cell;
  m.record = std::move(record);
  return m;
}

Message make_status() {
  Message m;
  m.type = MessageType::kStatus;
  return m;
}

Message make_report(std::string text) {
  Message m;
  m.type = MessageType::kReport;
  m.text = std::move(text);
  return m;
}

Message make_shutdown(std::string reason) {
  Message m;
  m.type = MessageType::kShutdown;
  m.text = std::move(reason);
  return m;
}

Message make_error(std::string code, std::string message) {
  Message m;
  m.type = MessageType::kError;
  m.code = std::move(code);
  m.message = std::move(message);
  return m;
}

}  // namespace dash::fleet
