// dash_lab.cpp -- unified experiment-orchestration CLI over the exp
// layer: describe a sweep once (spec file or one-line grid), then run
// it sequentially, sharded across worker processes, or shard-by-shard
// on different machines, and merge the per-shard records back into the
// single BENCH_*.json document a sequential run would have written --
// byte-identical, whichever path produced it.
//
//   dash_lab list-cells --grid 'n=64|128 healer=dash|sdash scenario=paper-churn'
//   dash_lab run  --spec sweep.spec --json BENCH_sweep.json
//   dash_lab run  --spec sweep.spec --workers 4 --json BENCH_sweep.json
//   dash_lab run  --spec sweep.spec --shard 0/2 --out shards/s0.jsonl
//   dash_lab run  --spec sweep.spec --shard 1/2 --out shards/s1.jsonl
//   dash_lab merge --spec sweep.spec --json BENCH_sweep.json
//       --inputs shards/s0.jsonl,shards/s1.jsonl
//
// Shard record files double as resume manifests: re-running with
// --resume skips every cell already recorded (the orchestrator
// forwards the flag to its workers), so an interrupted sweep finishes
// from where it stopped instead of recomputing.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/orchestrator.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "util/cli.h"

namespace {

using dash::exp::Cell;
using dash::exp::ExperimentSpec;

struct LabOptions {
  std::string spec_path;   ///< --spec FILE
  std::string grid;        ///< --grid "one-line spec"
  std::string shard;       ///< --shard I/N
  std::string out;         ///< --out shard record file
  std::string json;        ///< --json merged document path
  std::string inputs;      ///< --inputs comma-separated shard files
  std::string shard_dir = "dash_lab_shards";
  std::uint64_t workers = 0;
  std::uint64_t threads = 0;
  bool resume = false;
  bool quiet = false;
};

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: dash_lab <run|merge|list-cells> [options]\n"
      "\n"
      "subcommands:\n"
      "  run         execute the grid: sequentially, as one shard\n"
      "              (--shard I/N --out FILE), or across worker\n"
      "              processes (--workers N)\n"
      "  merge       reassemble shard record files (--inputs a,b,...)\n"
      "              into the single BENCH_*.json document\n"
      "  list-cells  print the grid's deterministic cell enumeration\n"
      "\n"
      "pass --help after a subcommand for its options\n");
  return to == stdout ? 0 : 2;
}

/// The experiment, from --spec or --grid (exactly one required).
ExperimentSpec load_spec(const LabOptions& opt) {
  if (opt.spec_path.empty() == opt.grid.empty()) {
    throw std::invalid_argument(
        "need exactly one of --spec <file> or --grid '<one-line spec>'");
  }
  return opt.spec_path.empty() ? ExperimentSpec::parse_line(opt.grid)
                               : ExperimentSpec::parse_file(opt.spec_path);
}

void parse_shard(const std::string& text, dash::exp::ShardOptions* out) {
  const auto slash = text.find('/');
  std::size_t index_end = 0, count_end = 0;
  try {
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
      throw std::invalid_argument("");
    }
    out->index = std::stoul(text.substr(0, slash), &index_end);
    out->count = std::stoul(text.substr(slash + 1), &count_end);
  } catch (const std::exception&) {
    index_end = count_end = std::string::npos;
  }
  if (index_end != slash || count_end != text.size() - slash - 1 ||
      out->count == 0 || out->index >= out->count) {
    throw std::invalid_argument("bad --shard '" + text +
                                "' (expected I/N with 0 <= I < N)");
  }
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Write the merged document to --json, or stdout without it.
void emit_document(const LabOptions& opt, const std::string& doc) {
  if (opt.json.empty()) {
    std::cout << doc;
    return;
  }
  std::ofstream out(opt.json);
  if (!out) {
    throw std::runtime_error("cannot open --json path '" + opt.json + "'");
  }
  out << doc;
  if (!opt.quiet) {
    std::fprintf(stderr, "merged summary written to %s\n",
                 opt.json.c_str());
  }
}

// ---- subcommands -----------------------------------------------------------

int cmd_list_cells(const LabOptions& opt) {
  const ExperimentSpec spec = load_spec(opt);
  const auto cells = spec.enumerate();
  std::cout << "spec: " << spec.canonical() << "\n"
            << "hash: " << spec.hash() << "\n"
            << "cells: " << cells.size() << "\n";
  for (const Cell& cell : cells) {
    std::cout << "  [" << cell.index << "] family=" << cell.family
              << " n=" << cell.n << " healer=" << cell.healer
              << " scenario=" << cell.scenario << " seed=" << cell.seed
              << " instances=" << cell.instances << "\n";
  }
  return 0;
}

/// In-process execution of one shard (the worker side of the
/// orchestrator, and the whole grid when no --shard was given).
int cmd_run_in_process(const LabOptions& opt, const ExperimentSpec& spec) {
  dash::exp::RunnerOptions ropt;
  if (!opt.shard.empty()) parse_shard(opt.shard, &ropt.shard);
  ropt.threads = static_cast<std::size_t>(opt.threads);
  if (!opt.shard.empty() && opt.out.empty()) {
    throw std::invalid_argument(
        "--shard needs --out <file> to persist the shard's records");
  }
  if (ropt.shard.count > 1 && !opt.json.empty()) {
    throw std::invalid_argument(
        "--json needs the whole grid; run the other shards and use "
        "'dash_lab merge'");
  }

  // Resume manifest: cells already recorded in --out are skipped; their
  // records merge with the new ones. A record from a different spec is
  // an error, not a silent recompute.
  std::set<std::size_t> skip;
  std::vector<dash::exp::ShardRecord> records;
  if (opt.resume && !opt.out.empty() && std::ifstream(opt.out).good()) {
    records = dash::exp::load_shard_file(opt.out);
    const std::string want = spec.hash();
    for (const auto& record : records) {
      if (record.spec_hash != want) {
        throw std::invalid_argument(
            "resume file '" + opt.out + "' carries spec hash " +
            record.spec_hash + ", this spec is " + want +
            " -- remove it or fix the spec");
      }
      skip.insert(record.cell);
    }
  }
  if (!skip.empty()) ropt.skip = &skip;

  std::ofstream shard_out;
  if (!opt.out.empty()) {
    // Always rewrite from the parsed records: an interrupted writer may
    // have left a truncated, newline-less final line that plain append
    // would concatenate the next record onto.
    shard_out.open(opt.out, std::ios::trunc);
    if (!shard_out) {
      throw std::runtime_error("cannot open --out path '" + opt.out + "'");
    }
    for (const auto& record : records) {
      shard_out << dash::exp::shard_line(record) << "\n";
    }
    shard_out.flush();
  }

  const std::size_t total = spec.enumerate().size();
  ropt.on_cell = [&](const dash::exp::CellResult& result) {
    if (shard_out.is_open()) {
      shard_out << dash::exp::shard_line(
                       dash::exp::to_record(spec, result))
                << "\n";
      shard_out.flush();  // every finished cell survives an interrupt
    }
    records.push_back(dash::exp::to_record(spec, result));
    if (!opt.quiet) {
      std::fprintf(stderr, "  [%zu/%zu] n=%zu healer=%s scenario=%s\n",
                   result.cell.index + 1, total, result.cell.n,
                   result.cell.healer.c_str(),
                   result.cell.scenario.c_str());
    }
  };
  dash::exp::run(spec, ropt);

  // A full in-process grid can emit the merged document directly; a
  // true shard cannot (its records are a strict subset), which the
  // preflight check above already rejected.
  if (ropt.shard.count == 1 && (!opt.json.empty() || opt.out.empty())) {
    emit_document(opt, dash::exp::merged_document(spec, records));
  }
  return 0;
}

int cmd_run(const LabOptions& opt, const char* argv0) {
  const ExperimentSpec spec = load_spec(opt);
  if (opt.workers == 0) return cmd_run_in_process(opt, spec);

  if (!opt.shard.empty() || !opt.out.empty()) {
    throw std::invalid_argument(
        "--workers spawns its own shards; drop --shard/--out");
  }
  dash::exp::OrchestrateOptions oopt;
  oopt.exe = dash::exp::current_executable(argv0);
  oopt.spec_args = opt.spec_path.empty()
                       ? std::vector<std::string>{"--grid", opt.grid}
                       : std::vector<std::string>{"--spec", opt.spec_path};
  if (opt.quiet) oopt.spec_args.push_back("--quiet");
  oopt.workers = static_cast<std::size_t>(opt.workers);
  oopt.shard_dir = opt.shard_dir;
  oopt.resume = opt.resume;
  oopt.threads = static_cast<std::size_t>(opt.threads);
  emit_document(opt, dash::exp::orchestrate(spec, oopt));
  return 0;
}

int cmd_merge(const LabOptions& opt) {
  const ExperimentSpec spec = load_spec(opt);
  if (opt.inputs.empty()) {
    throw std::invalid_argument(
        "merge needs --inputs <shard.jsonl,shard.jsonl,...>");
  }
  std::vector<dash::exp::ShardRecord> records;
  for (const std::string& path : split_commas(opt.inputs)) {
    const auto shard = dash::exp::load_shard_file(path);
    records.insert(records.end(), shard.begin(), shard.end());
  }
  emit_document(opt, dash::exp::merged_document(spec, records));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(stdout);
  if (cmd != "run" && cmd != "merge" && cmd != "list-cells") {
    std::fprintf(stderr, "dash_lab: unknown subcommand '%s'\n\n",
                 cmd.c_str());
    return usage(stderr);
  }

  LabOptions lab;
  dash::util::Options opt("dash_lab " + cmd +
                          " -- experiment grids, sharded execution and "
                          "byte-stable merges");
  opt.add_string("spec", &lab.spec_path, "experiment spec file");
  opt.add_string("grid", &lab.grid,
                 "one-line spec, e.g. 'n=64|128 healer=dash|sdash "
                 "scenario=paper-churn instances=5'");
  if (cmd == "run") {
    opt.add_string("shard", &lab.shard,
                   "run only cells of shard I/N (requires --out)");
    opt.add_string("out", &lab.out, "shard record file (JSON lines)");
    opt.add_uint("workers", &lab.workers,
                 "spawn N worker processes and merge their shards "
                 "(0 = run in-process)");
    opt.add_string("shard-dir", &lab.shard_dir,
                   "shard record directory for --workers");
    opt.add_flag("resume", &lab.resume,
                 "skip cells already recorded in the shard file(s)");
    opt.add_uint("threads", &lab.threads,
                 "suite worker threads per process (0 = hardware "
                 "concurrency, 1 = sequential)");
  }
  if (cmd == "merge") {
    opt.add_string("inputs", &lab.inputs,
                   "comma-separated shard record files");
  }
  if (cmd != "list-cells") {
    opt.add_string("json", &lab.json,
                   "write the merged BENCH_*.json here (default: stdout "
                   "for whole-grid runs)");
    opt.add_flag("quiet", &lab.quiet, "suppress progress on stderr");
  }

  // Options sees the subcommand's argv: argv[0] plus argv[2:].
  std::vector<char*> sub_argv{argv[0]};
  for (int i = 2; i < argc; ++i) sub_argv.push_back(argv[i]);
  if (!opt.parse(static_cast<int>(sub_argv.size()), sub_argv.data())) {
    return opt.help_requested() ? 0 : 2;
  }

  try {
    if (cmd == "list-cells") return cmd_list_cells(lab);
    if (cmd == "merge") return cmd_merge(lab);
    return cmd_run(lab, argv[0]);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "dash_lab %s: %s\n", cmd.c_str(), e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dash_lab %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
