// dash_lab.cpp -- unified experiment-orchestration CLI over the exp
// layer: describe a sweep once (spec file or one-line grid), then run
// it sequentially, sharded across worker processes, or shard-by-shard
// on different machines, and merge the per-shard records back into the
// single BENCH_*.json document a sequential run would have written --
// byte-identical, whichever path produced it.
//
//   dash_lab list-cells --grid 'n=64|128 healer=dash|sdash scenario=paper-churn'
//   dash_lab run  --spec sweep.spec --json BENCH_sweep.json
//   dash_lab run  --spec sweep.spec --workers 4 --json BENCH_sweep.json
//   dash_lab run  --spec sweep.spec --shard 0/2 --out shards/s0.jsonl
//   dash_lab run  --spec sweep.spec --shard 1/2 --out shards/s1.jsonl
//   dash_lab merge --spec sweep.spec --json BENCH_sweep.json
//       --inputs shards/s0.jsonl,shards/s1.jsonl
//
// Shard record files double as resume manifests: re-running with
// --resume skips every cell already recorded (the orchestrator
// forwards the flag to its workers), so an interrupted sweep finishes
// from where it stopped instead of recomputing.
//
// The replay verbs capture and re-execute single runs:
//
//   dash_lab record --healer dash --scenario paper-churn --n 128
//       --seed 7 --trace run.trace
//   dash_lab replay --trace run.trace            # bit-identity check
//   dash_lab replay --trace run.trace --healer none --lenient --invariants
//   dash_lab fuzz   --trace run.trace --mutants 50
//
// and --chaos kill:<cell> / torn:<cell> on run arms the exp layer's
// crash-fault injector (DASH_CHAOS) so resume paths stay honest.
//
// The fleet verbs run a grid as a coordinator/agent service with a
// work-stealing cell queue (src/fleet/):
//
//   dash_lab serve --spec sweep.spec --agents 3 --json BENCH_sweep.json
//   dash_lab serve --spec sweep.spec --listen tcp:4815   # external agents
//   dash_lab agent --connect tcp:host:4815 --spec sweep.spec
//   dash_lab status --connect tcp:host:4815
//
// Agents claim one cell at a time, heartbeat while it computes, and
// stream rows + the cell's shard record back; a killed or silent agent
// forfeits its lease and the cell is reassigned, with the final merged
// document still byte-identical to a sequential run. The coordinator's
// state dir doubles as a resume manifest (serve --resume).
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/scenario.h"
#include "api/serve_bench.h"
#include "exp/chaos.h"
#include "exp/orchestrator.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "fleet/agent.h"
#include "fleet/channel.h"
#include "fleet/coordinator.h"
#include "hunt/hunt.h"
#include "replay/fuzz.h"
#include "replay/play.h"
#include "replay/recorder.h"
#include "replay/shrink.h"
#include "replay/trace.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/registry.h"

namespace {

using dash::exp::Cell;
using dash::exp::ExperimentSpec;

struct LabOptions {
  std::string spec_path;   ///< --spec FILE
  std::string grid;        ///< --grid "one-line spec"
  std::string shard;       ///< --shard I/N
  std::string out;         ///< --out shard record file
  std::string json;        ///< --json merged document path
  std::string inputs;      ///< --inputs comma-separated shard files
  std::string shard_dir = "dash_lab_shards";
  std::uint64_t workers = 0;
  std::uint64_t threads = 0;
  bool resume = false;
  bool quiet = false;
  // run/merge rows output
  std::string rows;         ///< --rows per-round rows CSV path
  std::string rows_inputs;  ///< --rows-inputs per-shard rows files
  std::string chaos;        ///< --chaos kill:<cell> | torn:<cell>
  // record/replay/fuzz
  std::string trace;        ///< --trace file
  std::string healer;       ///< --healer spec (record default: dash)
  std::string scenario = "paper-churn";  ///< --scenario spec (record)
  std::string family = "ba";             ///< --family (record)
  std::uint64_t n = 128;                 ///< --n initial size (record)
  std::uint64_t ba_edges = 2;            ///< --ba-edges (record)
  std::uint64_t seed = 1;                ///< --seed (record/fuzz)
  std::uint64_t mutants = 20;            ///< --mutants (fuzz)
  std::string healers;                   ///< --healers a,b,c (fuzz)
  std::string repro_dir;                 ///< --repro-dir (fuzz)
  bool lenient = false;                  ///< --lenient (replay)
  bool invariants = false;               ///< --invariants (replay/record)
  bool no_shrink = false;                ///< --no-shrink (fuzz)
  // fleet (serve/agent/status)
  std::string listen;                    ///< serve --listen endpoint
  std::string connect;                   ///< agent/status --connect
  std::string state_dir = "dash_fleet";  ///< serve --state-dir
  std::string name;                      ///< agent --name
  std::uint64_t agents = 0;              ///< serve --agents (local)
  std::uint64_t lease_ms = 10000;        ///< serve --lease-ms
  std::uint64_t stop_after = 0;          ///< serve --stop-after
  // serve-bench
  std::string readers = "1,2,4,8";       ///< serve-bench --readers
  std::uint64_t publish_every = 1;       ///< serve-bench --publish-every
  std::uint64_t distance_every = 16;     ///< serve-bench --distance-every
  bool verify = false;                   ///< serve-bench --verify
  // hunt
  std::string strategy = "evolve";       ///< hunt --strategy
  std::string fitness = "delta";         ///< hunt --fitness
  std::string trace_dir;                 ///< hunt --trace-dir
  std::uint64_t budget = 200;            ///< hunt --budget
  std::uint64_t top = 3;                 ///< hunt --top
  std::uint64_t fleet = 0;               ///< hunt --fleet
  std::uint64_t instances = 2;           ///< hunt --instances
  std::uint64_t stretch_every = 0;       ///< hunt --stretch-every
  // list-cells
  bool cells_json = false;               ///< list-cells --json
};

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: dash_lab "
      "<run|merge|list-cells|serve|agent|status|serve-bench|record|"
      "replay|fuzz|hunt> [options]\n"
      "\n"
      "subcommands:\n"
      "  run         execute the grid: sequentially, as one shard\n"
      "              (--shard I/N --out FILE), or across worker\n"
      "              processes (--workers N)\n"
      "  merge       reassemble shard record files (--inputs a,b,...)\n"
      "              into the single BENCH_*.json document\n"
      "  list-cells  print the grid's deterministic cell enumeration\n"
      "  serve       coordinate the grid as a fleet: lease cells to\n"
      "              agents one at a time (work stealing), reassign on\n"
      "              death/silence, merge byte-identically; --agents N\n"
      "              spawns local agent processes, --resume restarts\n"
      "              from the state dir's manifest\n"
      "  agent       attach to a coordinator (--connect) and claim\n"
      "              cells until it says shutdown\n"
      "  status      print a serving coordinator's live progress\n"
      "  serve-bench measure the concurrent serving engine: N reader\n"
      "              threads answer queries from pinned epoch\n"
      "              snapshots while a churn+heal scenario mutates the\n"
      "              network; reports reads/s and p50/p99/p999, exits\n"
      "              1 on any torn read or determinism violation\n"
      "  record      play one scenario, capturing every event as a\n"
      "              replayable trace (--trace FILE)\n"
      "  replay      re-execute a trace bit-identically, or leniently\n"
      "              under another healer (--healer, --lenient,\n"
      "              --invariants); exit 1 on divergence/violation\n"
      "  fuzz        mutate a golden trace and replay every mutant\n"
      "              against every healer; failing mutants shrink to\n"
      "              repro traces (exit 1 when any healer violated)\n"
      "  hunt        search for worst-case attack schedules against a\n"
      "              healer (or healer list): random / greedy / evolve\n"
      "              over the genome grammar, scored by real runs;\n"
      "              emits a HUNT_*.json leaderboard and the best-k\n"
      "              schedules as replayable traces\n"
      "\n"
      "pass --help after a subcommand for its options\n");
  return to == stdout ? 0 : 2;
}

/// The experiment, from --spec or --grid (exactly one required).
ExperimentSpec load_spec(const LabOptions& opt) {
  if (opt.spec_path.empty() == opt.grid.empty()) {
    throw std::invalid_argument(
        "need exactly one of --spec <file> or --grid '<one-line spec>'");
  }
  return opt.spec_path.empty() ? ExperimentSpec::parse_line(opt.grid)
                               : ExperimentSpec::parse_file(opt.spec_path);
}

void parse_shard(const std::string& text, dash::exp::ShardOptions* out) {
  const auto slash = text.find('/');
  bool ok = slash != std::string::npos && slash > 0 &&
            slash + 1 < text.size();
  if (ok) {
    const char* base = text.data();
    const auto [iend, iec] =
        std::from_chars(base, base + slash, out->index);
    const auto [cend, cec] =
        std::from_chars(base + slash + 1, base + text.size(), out->count);
    ok = iec == std::errc{} && iend == base + slash &&
         cec == std::errc{} && cend == base + text.size();
  }
  if (!ok || out->count == 0 || out->index >= out->count) {
    throw std::invalid_argument("bad --shard '" + text +
                                "' (expected I/N with 0 <= I < N)");
  }
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Write the merged document to --json, or stdout without it.
void emit_document(const LabOptions& opt, const std::string& doc) {
  if (opt.json.empty()) {
    std::cout << doc;
    return;
  }
  std::ofstream out(opt.json);
  if (!out) {
    throw std::runtime_error("cannot open --json path '" + opt.json + "'");
  }
  out << doc;
  if (!opt.quiet) {
    std::fprintf(stderr, "merged summary written to %s\n",
                 opt.json.c_str());
  }
}

// ---- subcommands -----------------------------------------------------------

int cmd_list_cells(const LabOptions& opt) {
  const ExperimentSpec spec = load_spec(opt);
  const auto cells = spec.enumerate();
  if (opt.cells_json) {
    // One-line machine-readable form for scripts and CI.
    const auto esc = [](const std::string& s) {
      std::string out;
      for (const char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
      }
      return out;
    };
    std::cout << "{\"spec\":\"" << esc(spec.canonical()) << "\",\"hash\":\""
              << esc(spec.hash()) << "\",\"cells\":[";
    for (const Cell& cell : cells) {
      if (cell.index) std::cout << ',';
      std::cout << "{\"index\":" << cell.index << ",\"family\":\""
                << esc(cell.family) << "\",\"n\":" << cell.n
                << ",\"healer\":\"" << esc(cell.healer)
                << "\",\"scenario\":\"" << esc(cell.scenario)
                << "\",\"seed\":" << cell.seed
                << ",\"instances\":" << cell.instances << "}";
    }
    std::cout << "]}\n";
    return 0;
  }
  std::cout << "spec: " << spec.canonical() << "\n"
            << "hash: " << spec.hash() << "\n"
            << "cells: " << cells.size() << "\n";
  for (const Cell& cell : cells) {
    std::cout << "  [" << cell.index << "] family=" << cell.family
              << " n=" << cell.n << " healer=" << cell.healer
              << " scenario=" << cell.scenario << " seed=" << cell.seed
              << " instances=" << cell.instances << "\n";
  }
  return 0;
}

/// In-process execution of one shard (the worker side of the
/// orchestrator, and the whole grid when no --shard was given).
int cmd_run_in_process(const LabOptions& opt, const ExperimentSpec& spec) {
  dash::exp::RunnerOptions ropt;
  if (!opt.shard.empty()) parse_shard(opt.shard, &ropt.shard);
  ropt.threads = static_cast<std::size_t>(opt.threads);
  if (!opt.shard.empty() && opt.out.empty()) {
    throw std::invalid_argument(
        "--shard needs --out <file> to persist the shard's records");
  }
  if (ropt.shard.count > 1 && !opt.json.empty()) {
    throw std::invalid_argument(
        "--json needs the whole grid; run the other shards and use "
        "'dash_lab merge'");
  }

  // Resume manifest: cells already recorded in --out are skipped; their
  // records merge with the new ones. A record from a different spec is
  // an error, not a silent recompute.
  std::set<std::size_t> skip;
  std::vector<dash::exp::ShardRecord> records;
  if (opt.resume && !opt.out.empty() && std::ifstream(opt.out).good()) {
    records = dash::exp::load_shard_file(opt.out);
    const std::string want = spec.hash();
    for (const auto& record : records) {
      if (record.spec_hash != want) {
        throw std::invalid_argument(
            "resume file '" + opt.out + "' carries spec hash " +
            record.spec_hash + ", this spec is " + want +
            " -- remove it or fix the spec");
      }
      skip.insert(record.cell);
    }
  }
  if (!skip.empty()) ropt.skip = &skip;

  std::ofstream shard_out;
  if (!opt.out.empty()) {
    // Always rewrite from the parsed records: an interrupted writer may
    // have left a truncated, newline-less final line that plain append
    // would concatenate the next record onto.
    shard_out.open(opt.out, std::ios::trunc);
    if (!shard_out) {
      throw std::runtime_error("cannot open --out path '" + opt.out + "'");
    }
    for (const auto& record : records) {
      shard_out << dash::exp::shard_line(record) << "\n";
    }
    shard_out.flush();
  }

  // Per-round rows: stream per finished cell (kept cells' rows carry
  // over from the resume file), canonicalize on completion so the
  // final file is byte-identical whether this run was the whole grid
  // or the shards were merged later.
  std::vector<dash::exp::RowsRecord> rows_records;
  std::ofstream rows_out;
  if (!opt.rows.empty()) {
    if (opt.resume && std::ifstream(opt.rows).good()) {
      for (auto& row : dash::exp::load_rows_file(opt.rows)) {
        if (skip.count(row.cell) != 0) rows_records.push_back(std::move(row));
      }
    }
    rows_out.open(opt.rows, std::ios::trunc);
    if (!rows_out) {
      throw std::runtime_error("cannot open --rows path '" + opt.rows +
                               "'");
    }
    rows_out << dash::exp::rows_header() << "\n";
    for (const auto& row : rows_records) rows_out << row.line << "\n";
    rows_out.flush();
    ropt.on_rows = [&](const Cell& cell,
                       const std::vector<dash::api::RoundRow>& rows) {
      for (const auto& row : rows) {
        dash::exp::RowsRecord rec;
        rec.cell = cell.index;
        rec.instance = row.instance;
        rec.seq = row.seq;
        rec.line = dash::exp::rows_line(cell.index, row);
        rows_out << rec.line << "\n";
        rows_records.push_back(std::move(rec));
      }
      rows_out.flush();  // rows land before the cell's record
    };
  }

  const dash::exp::ChaosPlan chaos = dash::exp::chaos_from_env();
  const std::size_t total = spec.enumerate().size();
  ropt.on_cell = [&](const dash::exp::CellResult& result) {
    const std::string line =
        dash::exp::shard_line(dash::exp::to_record(spec, result));
    if (shard_out.is_open()) {
      dash::exp::chaos_strike(chaos, result.cell.index, shard_out, line);
      shard_out << line << "\n";
      shard_out.flush();  // every finished cell survives an interrupt
    } else if (chaos.armed()) {
      std::ostringstream devnull;  // no record file: torn degrades to kill
      dash::exp::chaos_strike(chaos, result.cell.index, devnull, line);
    }
    records.push_back(dash::exp::to_record(spec, result));
    if (!opt.quiet) {
      std::fprintf(stderr, "  [%zu/%zu] n=%zu healer=%s scenario=%s\n",
                   result.cell.index + 1, total, result.cell.n,
                   result.cell.healer.c_str(),
                   result.cell.scenario.c_str());
    }
  };
  dash::exp::run(spec, ropt);

  if (rows_out.is_open()) {
    rows_out.close();
    std::ofstream canonical(opt.rows, std::ios::trunc);
    if (!canonical) {
      throw std::runtime_error("cannot rewrite --rows path '" + opt.rows +
                               "'");
    }
    canonical << dash::exp::merged_rows(std::move(rows_records));
  }

  // A full in-process grid can emit the merged document directly; a
  // true shard cannot (its records are a strict subset), which the
  // preflight check above already rejected.
  if (ropt.shard.count == 1 && (!opt.json.empty() || opt.out.empty())) {
    emit_document(opt, dash::exp::merged_document(spec, records));
  }
  return 0;
}

int cmd_run(const LabOptions& opt, const char* argv0) {
  const ExperimentSpec spec = load_spec(opt);
  if (!opt.chaos.empty()) {
    dash::exp::parse_chaos(opt.chaos);  // validate before arming
    ::setenv(dash::exp::kChaosEnv, opt.chaos.c_str(), 1);
  }
  if (opt.workers == 0) return cmd_run_in_process(opt, spec);

  if (!opt.shard.empty() || !opt.out.empty()) {
    throw std::invalid_argument(
        "--workers spawns its own shards; drop --shard/--out");
  }
  dash::exp::OrchestrateOptions oopt;
  oopt.exe = dash::exp::current_executable(argv0);
  oopt.spec_args = opt.spec_path.empty()
                       ? std::vector<std::string>{"--grid", opt.grid}
                       : std::vector<std::string>{"--spec", opt.spec_path};
  if (opt.quiet) oopt.spec_args.push_back("--quiet");
  oopt.workers = static_cast<std::size_t>(opt.workers);
  oopt.shard_dir = opt.shard_dir;
  oopt.resume = opt.resume;
  oopt.threads = static_cast<std::size_t>(opt.threads);
  oopt.rows = !opt.rows.empty();
  dash::exp::OrchestrateResult result;
  try {
    result = dash::exp::orchestrate(spec, oopt);
  } catch (const dash::exp::OrchestrateError& e) {
    for (const auto& worker : e.workers()) {
      std::fprintf(stderr, "  worker %s\n", worker.describe().c_str());
    }
    throw;
  }
  if (!opt.rows.empty()) {
    std::ofstream rows_out(opt.rows, std::ios::trunc);
    if (!rows_out) {
      throw std::runtime_error("cannot open --rows path '" + opt.rows +
                               "'");
    }
    rows_out << result.rows;
    if (!opt.quiet) {
      std::fprintf(stderr, "merged rows written to %s\n",
                   opt.rows.c_str());
    }
  }
  emit_document(opt, result.document);
  return 0;
}

int cmd_merge(const LabOptions& opt) {
  const ExperimentSpec spec = load_spec(opt);
  if (opt.inputs.empty()) {
    throw std::invalid_argument(
        "merge needs --inputs <shard.jsonl,shard.jsonl,...>");
  }
  std::vector<dash::exp::ShardRecord> records;
  for (const std::string& path : split_commas(opt.inputs)) {
    const auto shard = dash::exp::load_shard_file(path);
    records.insert(records.end(), shard.begin(), shard.end());
  }
  if (!opt.rows_inputs.empty()) {
    if (opt.rows.empty()) {
      throw std::invalid_argument(
          "--rows-inputs needs --rows <file> for the merged rows");
    }
    std::vector<dash::exp::RowsRecord> rows;
    for (const std::string& path : split_commas(opt.rows_inputs)) {
      auto shard_rows = dash::exp::load_rows_file(path);
      rows.insert(rows.end(),
                  std::make_move_iterator(shard_rows.begin()),
                  std::make_move_iterator(shard_rows.end()));
    }
    std::ofstream rows_out(opt.rows, std::ios::trunc);
    if (!rows_out) {
      throw std::runtime_error("cannot open --rows path '" + opt.rows +
                               "'");
    }
    rows_out << dash::exp::merged_rows(std::move(rows));
    if (!opt.quiet) {
      std::fprintf(stderr, "merged rows written to %s\n",
                   opt.rows.c_str());
    }
  }
  emit_document(opt, dash::exp::merged_document(spec, records));
  return 0;
}

// ---- fleet verbs -----------------------------------------------------------

int cmd_serve(const LabOptions& opt, const char* argv0) {
  const ExperimentSpec spec = load_spec(opt);
  if (!opt.chaos.empty()) {
    if (opt.agents == 0) {
      throw std::invalid_argument(
          "serve --chaos needs --agents (it arms the first local agent)");
    }
    dash::exp::parse_chaos(opt.chaos);  // validate before spawning
  }
  dash::fleet::CoordinatorOptions copt;
  copt.listen = opt.listen;
  copt.state_dir = opt.state_dir;
  copt.resume = opt.resume;
  copt.rows = !opt.rows.empty();
  copt.lease_ms = static_cast<std::size_t>(opt.lease_ms);
  copt.stop_after = static_cast<std::size_t>(opt.stop_after);
  if (opt.quiet) copt.progress = [](const std::string&) {};
  dash::fleet::Coordinator coordinator(spec, copt);
  const std::string endpoint = coordinator.endpoint().spec();
  if (!opt.quiet) {
    std::fprintf(stderr, "fleet: listening at %s\n", endpoint.c_str());
  }

  // Local agents, orchestrate-style (fork + exec of this binary). Any
  // chaos plan arms agent 0 *only*: agents inheriting the same plan
  // would all die at the reassigned cell, forever.
  std::vector<pid_t> pids;
  if (opt.agents > 0) {
    std::size_t agent_threads = static_cast<std::size_t>(opt.threads);
    if (agent_threads == 0) {
      agent_threads = std::max<std::size_t>(
          1, std::thread::hardware_concurrency() /
                 static_cast<std::size_t>(opt.agents));
    }
    const std::string exe = dash::exp::current_executable(argv0);
    for (std::uint64_t i = 0; i < opt.agents; ++i) {
      std::vector<std::string> args{"agent", "--connect", endpoint,
                                    "--name",
                                    "agent-" + std::to_string(i)};
      if (opt.spec_path.empty()) {
        args.push_back("--grid");
        args.push_back(opt.grid);
      } else {
        args.push_back("--spec");
        args.push_back(opt.spec_path);
      }
      args.push_back("--threads");
      args.push_back(std::to_string(agent_threads));
      if (opt.quiet) args.push_back("--quiet");
      if (i == 0 && !opt.chaos.empty()) {
        args.push_back("--chaos");
        args.push_back(opt.chaos);
      }
      pids.push_back(dash::exp::spawn_process(exe, args));
    }
  }

  const dash::fleet::FleetReport report = coordinator.run();

  // Reap local agents; their fates are informational (a chaos-killed
  // agent is the point of the exercise) -- grid completion is what
  // this process's exit code stands for.
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const dash::exp::WorkerStatus ws = dash::exp::wait_process(pids[i]);
    if (!opt.quiet && !ws.ok()) {
      std::string fate;
      if (ws.exited) {
        fate = "exit " + std::to_string(ws.exit_code);
      } else if (ws.signaled) {
        fate = "killed by signal " + std::to_string(ws.signal_no);
      } else {
        fate = "wait failed";
      }
      std::fprintf(stderr, "fleet: agent-%zu %s\n", i, fate.c_str());
    }
  }

  if (!opt.quiet) {
    std::fprintf(stderr, "%s\n",
                 dash::fleet::render_status(report).c_str());
  }
  if (!report.complete) {
    std::fprintf(stderr,
                 "fleet: checkpoint at %zu/%zu cells in %s; rerun with "
                 "--resume to finish\n",
                 report.done, report.cells, opt.state_dir.c_str());
    return 3;
  }
  if (!opt.rows.empty()) {
    std::ofstream rows_out(opt.rows, std::ios::trunc);
    if (!rows_out) {
      throw std::runtime_error("cannot open --rows path '" + opt.rows +
                               "'");
    }
    rows_out << report.rows_csv;
    if (!opt.quiet) {
      std::fprintf(stderr, "merged rows written to %s\n",
                   opt.rows.c_str());
    }
  }
  emit_document(opt, report.document);
  return 0;
}

int cmd_agent(const LabOptions& opt) {
  if (opt.connect.empty()) {
    throw std::invalid_argument("agent needs --connect <endpoint>");
  }
  const ExperimentSpec spec = load_spec(opt);
  dash::fleet::AgentOptions aopt;
  aopt.connect = opt.connect;
  aopt.name = opt.name;
  aopt.threads = static_cast<std::size_t>(opt.threads);
  if (!opt.chaos.empty()) aopt.chaos = dash::exp::parse_chaos(opt.chaos);
  if (opt.quiet) aopt.progress = [](const std::string&) {};
  const dash::fleet::AgentReport report = dash::fleet::run_agent(spec, aopt);
  if (!opt.quiet) {
    std::fprintf(stderr, "agent: %zu cells done (%s)\n", report.cells_done,
                 report.shutdown_reason.c_str());
  }
  return 0;
}

int cmd_status(const LabOptions& opt) {
  if (opt.connect.empty()) {
    throw std::invalid_argument("status needs --connect <endpoint>");
  }
  dash::fleet::Channel ch = dash::fleet::connect_channel(
      dash::fleet::Endpoint::parse(opt.connect));
  if (!ch.send(dash::fleet::make_status())) {
    throw std::runtime_error("coordinator closed the connection");
  }
  const auto reply = ch.recv();
  if (!reply || reply->type != dash::fleet::MessageType::kReport) {
    throw std::runtime_error("no status report from the coordinator");
  }
  std::printf("%s\n", reply->text.c_str());
  return 0;
}

// ---- replay verbs ----------------------------------------------------------

int cmd_record(const LabOptions& opt) {
  if (opt.trace.empty()) {
    throw std::invalid_argument("record needs --trace <file>");
  }
  dash::replay::RecordConfig cfg;
  cfg.make_graph = dash::exp::make_family(
      opt.family, static_cast<std::size_t>(opt.n),
      static_cast<std::size_t>(opt.ba_edges));
  cfg.healer = opt.healer.empty() ? "dash" : opt.healer;
  cfg.scenario = dash::api::Scenario::parse(opt.scenario);
  cfg.seed = opt.seed;
  std::string repro;
  cfg.invariants = opt.invariants;
  cfg.repro = opt.repro_dir;
  cfg.repro_path = &repro;
  std::ofstream out(opt.trace, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open --trace path '" + opt.trace +
                             "'");
  }
  const dash::api::Metrics m = dash::replay::record_scenario(cfg, out);
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "recorded %s: healer=%s scenario=%s seed=%llu "
                 "deletions=%zu joins=%zu\n",
                 opt.trace.c_str(), cfg.healer.c_str(),
                 cfg.scenario.spec().c_str(),
                 static_cast<unsigned long long>(opt.seed), m.deletions,
                 m.joins);
  }
  if (opt.invariants && !m.violation.empty()) {
    std::fprintf(stderr, "invariant violation: %s\n  repro: %s\n",
                 m.violation.c_str(), repro.c_str());
    return 1;
  }
  return 0;
}

int cmd_replay(const LabOptions& opt) {
  if (opt.trace.empty()) {
    throw std::invalid_argument("replay needs --trace <file>");
  }
  const dash::replay::Trace t = dash::replay::load_trace_file(opt.trace);
  dash::replay::ReplayOptions ropt;
  ropt.healer_override = opt.healer;
  ropt.lenient = opt.lenient;
  ropt.check_invariants = opt.invariants;
  const dash::replay::ReplayResult r = dash::replay::play_trace(t, ropt);
  if (!opt.quiet) {
    std::fprintf(stderr, "replayed %zu events (%zu skipped) healer=%s%s\n",
                 r.applied, r.skipped,
                 opt.healer.empty() ? t.healer.c_str() : opt.healer.c_str(),
                 t.complete() ? "" : " [incomplete trace]");
  }
  if (r.ok()) return 0;
  std::fprintf(stderr, "replay failed: %s\n", r.failure().c_str());
  return 1;
}

int cmd_fuzz(const LabOptions& opt) {
  if (opt.trace.empty()) {
    throw std::invalid_argument("fuzz needs --trace <file>");
  }
  const dash::replay::Trace t = dash::replay::load_trace_file(opt.trace);
  dash::replay::FuzzOptions fopt;
  fopt.mutants = static_cast<std::size_t>(opt.mutants);
  fopt.seed = opt.seed;
  fopt.healers = split_commas(opt.healers);
  fopt.shrink = !opt.no_shrink;
  fopt.repro_dir = opt.repro_dir;
  const dash::replay::FuzzReport report =
      dash::replay::fuzz_trace(t, fopt);
  if (!opt.quiet || !report.ok()) {
    std::fprintf(stderr, "fuzz: %zu mutants, %zu replays, %zu failures\n",
                 report.mutants, report.replays, report.failures.size());
  }
  for (const auto& f : report.failures) {
    std::fprintf(stderr,
                 "  mutant %zu healer %s: %s (%zu -> %zu events)%s%s\n",
                 f.mutant, f.healer.c_str(), f.violation.c_str(),
                 f.original_events, f.shrunk_events,
                 f.repro_path.empty() ? "" : " repro ",
                 f.repro_path.c_str());
  }
  return report.ok() ? 0 : 1;
}

int cmd_hunt(const LabOptions& opt) {
  dash::hunt::HuntConfig cfg;
  if (!opt.name.empty()) cfg.name = opt.name;
  cfg.family = opt.family;
  cfg.n = static_cast<std::size_t>(opt.n);
  cfg.ba_edges = static_cast<std::size_t>(opt.ba_edges);
  cfg.healers =
      split_commas(opt.healers.empty() ? std::string("dash") : opt.healers);
  cfg.instances = static_cast<std::size_t>(opt.instances);
  cfg.seed = opt.seed;
  cfg.stretch_every = static_cast<std::size_t>(opt.stretch_every);
  cfg.fitness = opt.fitness;
  cfg.strategy = opt.strategy;
  cfg.budget = static_cast<std::size_t>(opt.budget);
  cfg.top_k = static_cast<std::size_t>(opt.top);
  cfg.threads = static_cast<std::size_t>(opt.threads);
  cfg.fleet_agents = static_cast<std::size_t>(opt.fleet);
  cfg.state_dir = opt.state_dir;
  cfg.resume = opt.resume;
  cfg.trace_dir = opt.trace_dir;
  if (!opt.quiet) {
    cfg.progress = [](const std::string& line) {
      std::fprintf(stderr, "hunt: %s\n", line.c_str());
    };
  }

  const dash::hunt::HuntResult result = dash::hunt::run_hunt(cfg);
  if (result.best.empty()) {
    std::fprintf(stderr, "hunt: no candidates scored\n");
    return 1;
  }
  if (!opt.json.empty()) {
    std::ofstream out(opt.json, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open --json path '" + opt.json +
                               "'");
    }
    out << result.leaderboard_json;
  }
  // Parseable summary lines (the smoke tests grep these).
  std::printf("evaluations: %zu\n", result.evaluations);
  std::printf("best fitness=%s\n",
              dash::util::CsvWriter::to_field(result.best.front().fitness)
                  .c_str());
  std::printf("best spec=%s\n",
              result.best.front().genome.spec().c_str());
  for (const dash::hunt::HuntBest& best : result.best) {
    if (!best.trace_path.empty()) {
      std::printf("trace: %s\n", best.trace_path.c_str());
    }
  }
  const std::string board =
      opt.json.empty() ? result.leaderboard_path : opt.json;
  if (!board.empty()) std::printf("leaderboard: %s\n", board.c_str());
  return 0;
}

int cmd_serve_bench(const LabOptions& opt) {
  dash::api::ServeBenchConfig cfg;
  cfg.n = static_cast<std::size_t>(opt.n);
  cfg.attach = static_cast<std::size_t>(opt.ba_edges);
  if (!opt.healer.empty()) cfg.healer = opt.healer;
  cfg.scenario = opt.scenario;
  cfg.seed = opt.seed;
  cfg.publish_every = static_cast<std::size_t>(opt.publish_every);
  cfg.distance_every = static_cast<std::size_t>(opt.distance_every);
  cfg.verify = opt.verify;
  cfg.rows_path = opt.rows;
  cfg.reader_counts.clear();
  for (const std::string& item : split_commas(opt.readers)) {
    cfg.reader_counts.push_back(static_cast<std::size_t>(
        dash::util::parse_spec_uint("readers", item, 1024)));
  }
  if (cfg.reader_counts.empty()) {
    throw std::invalid_argument("--readers needs at least one count");
  }

  const dash::api::ServeBenchReport report =
      dash::api::run_serve_bench(cfg);
  if (!opt.quiet) render_serve_table(report, std::cout);
  if (!opt.json.empty()) {
    std::ofstream os(opt.json);
    if (!os) {
      throw std::runtime_error("cannot open --json path '" + opt.json +
                               "'");
    }
    render_serve_json(cfg, report, os);
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(stdout);
  const bool grid_cmd =
      cmd == "run" || cmd == "merge" || cmd == "list-cells";
  const bool trace_cmd =
      cmd == "record" || cmd == "replay" || cmd == "fuzz";
  const bool fleet_cmd =
      cmd == "serve" || cmd == "agent" || cmd == "status";
  const bool bench_cmd = cmd == "serve-bench";
  const bool hunt_cmd = cmd == "hunt";
  if (!grid_cmd && !trace_cmd && !fleet_cmd && !bench_cmd && !hunt_cmd) {
    std::fprintf(stderr, "dash_lab: unknown subcommand '%s'\n\n",
                 cmd.c_str());
    return usage(stderr);
  }

  LabOptions lab;
  dash::util::Options opt("dash_lab " + cmd +
                          " -- experiment grids, sharded execution, "
                          "byte-stable merges and trace replay");
  if (grid_cmd || cmd == "serve" || cmd == "agent") {
    opt.add_string("spec", &lab.spec_path, "experiment spec file");
    opt.add_string("grid", &lab.grid,
                   "one-line spec, e.g. 'n=64|128 healer=dash|sdash "
                   "scenario=paper-churn instances=5'");
  }
  if (cmd == "run") {
    opt.add_string("shard", &lab.shard,
                   "run only cells of shard I/N (requires --out)");
    opt.add_string("out", &lab.out, "shard record file (JSON lines)");
    opt.add_uint("workers", &lab.workers,
                 "spawn N worker processes and merge their shards "
                 "(0 = run in-process)");
    opt.add_string("shard-dir", &lab.shard_dir,
                   "shard record directory for --workers");
    opt.add_flag("resume", &lab.resume,
                 "skip cells already recorded in the shard file(s)");
    opt.add_uint("threads", &lab.threads,
                 "suite worker threads per process (0 = hardware "
                 "concurrency, 1 = sequential)");
    opt.add_string("rows", &lab.rows,
                   "stream per-round rows here (canonical CSV; with "
                   "--workers the merged rows of every shard)");
    opt.add_string("chaos", &lab.chaos,
                   "crash-fault injection: kill:<cell> or torn:<cell> "
                   "(arms DASH_CHAOS for this run and its workers)");
  }
  if (cmd == "merge") {
    opt.add_string("inputs", &lab.inputs,
                   "comma-separated shard record files");
    opt.add_string("rows-inputs", &lab.rows_inputs,
                   "comma-separated per-shard rows files");
    opt.add_string("rows", &lab.rows,
                   "write the merged rows CSV here (with --rows-inputs)");
  }
  if (cmd == "serve") {
    opt.add_string("listen", &lab.listen,
                   "endpoint to serve at: unix:<path> or tcp:[host:]port "
                   "(port 0 = ephemeral; default "
                   "unix:<state-dir>/fleet.sock)");
    opt.add_string("state-dir", &lab.state_dir,
                   "spool + resume-manifest directory");
    opt.add_uint("agents", &lab.agents,
                 "spawn N local agent processes (0 = external agents "
                 "connect on their own)");
    opt.add_uint("lease-ms", &lab.lease_ms,
                 "reassign an agent's cell after this long without a "
                 "frame from it");
    opt.add_uint("stop-after", &lab.stop_after,
                 "checkpoint and exit (code 3) after N newly committed "
                 "cells (restart-resume testing)");
    opt.add_flag("resume", &lab.resume,
                 "skip cells already in the state dir's manifest");
    opt.add_uint("threads", &lab.threads,
                 "suite threads per spawned agent (0 = hardware "
                 "concurrency split between them)");
    opt.add_string("rows", &lab.rows,
                   "collect per-round rows and write the canonical CSV "
                   "here");
    opt.add_string("chaos", &lab.chaos,
                   "arm kill:<cell> / torn:<cell> on the first spawned "
                   "agent (requires --agents)");
  }
  if (cmd == "agent" || cmd == "status") {
    opt.add_string("connect", &lab.connect,
                   "coordinator endpoint (unix:<path> or tcp:host:port)");
  }
  if (cmd == "agent") {
    opt.add_string("name", &lab.name,
                   "display name in coordinator logs (default "
                   "agent-<pid>)");
    opt.add_uint("threads", &lab.threads,
                 "suite threads per cell (0 = hardware, 1 = sequential)");
    opt.add_string("chaos", &lab.chaos,
                   "die at kill:<cell> / torn:<cell> (fault-injection "
                   "tests)");
  }
  if (trace_cmd) {
    opt.add_string("trace", &lab.trace, "the trace file (required)");
  }
  if (cmd == "record") {
    opt.add_string("family", &lab.family,
                   "graph family (ba, tree, gnp, ws, cycle, line)");
    opt.add_uint("n", &lab.n, "initial graph size");
    opt.add_uint("ba-edges", &lab.ba_edges, "BA attachment edges");
    opt.add_string("healer", &lab.healer,
                   "healer registry spec (default dash)");
    opt.add_string("scenario", &lab.scenario, "scenario spec");
    opt.add_uint("seed", &lab.seed, "run seed");
    opt.add_flag("invariants", &lab.invariants,
                 "run the invariant battery during the recording; a "
                 "violation shrinks the trace into an automatic repro "
                 "(exit 1)");
    opt.add_string("repro-dir", &lab.repro_dir,
                   "automatic repro directory (default $DASH_REPRO_DIR, "
                   "else dash_repro)");
  }
  if (cmd == "replay") {
    opt.add_string("healer", &lab.healer,
                   "replay under this healer instead of the recorded "
                   "one (disables digest verification)");
    opt.add_flag("lenient", &lab.lenient,
                 "skip events the graph state cannot apply (mutated/"
                 "truncated traces) instead of failing");
    opt.add_flag("invariants", &lab.invariants,
                 "attach the invariant battery; violations fail the "
                 "replay");
  }
  if (cmd == "fuzz") {
    opt.add_uint("mutants", &lab.mutants, "number of mutants");
    opt.add_uint("seed", &lab.seed, "fuzz seed");
    opt.add_string("healers", &lab.healers,
                   "comma-separated healer specs (default: the paper "
                   "strategy set)");
    opt.add_string("repro-dir", &lab.repro_dir,
                   "repro trace directory (default $DASH_REPRO_DIR, "
                   "else dash_repro)");
    opt.add_flag("no-shrink", &lab.no_shrink,
                 "keep failing mutants unshrunk (no repro files)");
  }
  if (cmd == "serve-bench") {
    opt.add_uint("n", &lab.n, "initial Barabasi-Albert network size");
    opt.add_uint("ba-edges", &lab.ba_edges, "BA attachment edges");
    opt.add_string("healer", &lab.healer,
                   "healer registry spec (default dash)");
    opt.add_string("scenario", &lab.scenario,
                   "mutation scenario spec (default paper-churn)");
    opt.add_uint("seed", &lab.seed, "base seed");
    opt.add_string("readers", &lab.readers,
                   "comma-separated reader thread counts to sweep");
    opt.add_uint("publish-every", &lab.publish_every,
                 "publish a snapshot every k-th mutation event");
    opt.add_uint("distance-every", &lab.distance_every,
                 "every k-th read runs the BFS cross-check (0 = never)");
    opt.add_flag("verify", &lab.verify,
                 "cross-check label vs BFS connectivity on every read");
    opt.add_string("rows", &lab.rows,
                   "stream per-round rows (async pipeline) to this CSV");
    opt.add_string("json", &lab.json, "write the report as JSON here");
  }
  if (cmd == "hunt") {
    lab.state_dir = "dash_hunt";
    lab.threads = 0;
    opt.add_string("name", &lab.name,
                   "hunt name, used in artifact filenames (default hunt)");
    opt.add_string("family", &lab.family,
                   "graph family (ba, tree, gnp, ws, cycle, line)");
    opt.add_uint("n", &lab.n, "initial graph size");
    opt.add_uint("ba-edges", &lab.ba_edges, "BA attachment edges");
    opt.add_string("healers", &lab.healers,
                   "comma-separated healer specs the adversary is scored "
                   "against (default dash)");
    opt.add_uint("instances", &lab.instances,
                 "paired-seed runs per candidate per healer");
    opt.add_uint("seed", &lab.seed, "search + evaluation seed");
    opt.add_string("strategy", &lab.strategy,
                   "search strategy: random, greedy[:<neighbors>], "
                   "evolve[:<population>]");
    opt.add_string("fitness", &lab.fitness,
                   "what to maximize: delta, stretch, disconnect, or "
                   "combo:<wd>,<ws>,<wc>");
    opt.add_uint("budget", &lab.budget,
                 "distinct candidates to evaluate (hard cap)");
    opt.add_uint("top", &lab.top, "leaderboard / trace emission depth");
    opt.add_uint("stretch-every", &lab.stretch_every,
                 "stretch sampling cadence (0 = auto when the fitness "
                 "needs it)");
    opt.add_uint("threads", &lab.threads,
                 "suite threads for scoring (0 = hardware, 1 = "
                 "sequential; same results either way)");
    opt.add_uint("fleet", &lab.fleet,
                 "score generations across N in-process fleet agents "
                 "instead of the thread pool (same results)");
    opt.add_string("state-dir", &lab.state_dir,
                   "spool + artifact directory; --resume reuses its "
                   "scores");
    opt.add_flag("resume", &lab.resume,
                 "warm-start from the state dir's evaluation spool");
    opt.add_string("trace-dir", &lab.trace_dir,
                   "write the best-k traces here (default: state dir)");
    opt.add_string("json", &lab.json,
                   "also write the HUNT_*.json leaderboard here");
  }
  if (cmd == "run" || cmd == "merge" || cmd == "serve") {
    opt.add_string("json", &lab.json,
                   "write the merged BENCH_*.json here (default: stdout "
                   "for whole-grid runs)");
  }
  if (cmd == "list-cells") {
    opt.add_flag("json", &lab.cells_json,
                 "print the enumeration as one line of JSON");
  } else {
    opt.add_flag("quiet", &lab.quiet, "suppress progress on stderr");
  }

  // Options sees the subcommand's argv: argv[0] plus argv[2:].
  std::vector<char*> sub_argv{argv[0]};
  for (int i = 2; i < argc; ++i) sub_argv.push_back(argv[i]);
  if (!opt.parse(static_cast<int>(sub_argv.size()), sub_argv.data())) {
    return opt.help_requested() ? 0 : 2;
  }

  try {
    if (cmd == "list-cells") return cmd_list_cells(lab);
    if (cmd == "merge") return cmd_merge(lab);
    if (cmd == "serve") return cmd_serve(lab, argv[0]);
    if (cmd == "serve-bench") return cmd_serve_bench(lab);
    if (cmd == "agent") return cmd_agent(lab);
    if (cmd == "status") return cmd_status(lab);
    if (cmd == "record") return cmd_record(lab);
    if (cmd == "replay") return cmd_replay(lab);
    if (cmd == "fuzz") return cmd_fuzz(lab);
    if (cmd == "hunt") return cmd_hunt(lab);
    return cmd_run(lab, argv[0]);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "dash_lab %s: %s\n", cmd.c_str(), e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dash_lab %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
